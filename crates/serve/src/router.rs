//! Route dispatch, zero-copy response encoding, and per-request
//! instrumentation.
//!
//! [`ServeState`] is the shared immutable heart of the server: the
//! precomputed [`QueryIndex`], the dataset's build-time telemetry, and
//! a mutex-guarded request-telemetry capture that every response is
//! accounted into — per-route request counters, status-class counters,
//! response-byte / latency histograms, and the shed counter — all
//! through the `govhost-obs` registry. `/metrics` renders the merged
//! capture with [`metrics_text`], whose deterministic mode keeps the
//! exposition byte-stable across runs and worker counts.
//!
//! Responses are **zero-copy**: a [`Response`] is two immutable
//! [`Bytes`] segments — a precomputed header slab (status line through
//! the last fixed header, `ETag` included) and the body slab — plus a
//! static `Connection:` fragment chosen at send time. For the
//! precomputed routes both slabs come straight out of the
//! [`QueryIndex`], so answering a request is three `Arc` bumps and a
//! vectored write; nothing is re-rendered or copied per request.
//!
//! Accounting order matters for determinism under sequential clients:
//! a request's arrival counter is recorded *before* its handler runs
//! (so `/metrics` sees itself), and its status/size/latency series
//! *after* — visible to every later request regardless of which worker
//! served this one.

use crate::http::{HttpError, Request};
use crate::index::{QueryIndex, RouteSlab};
use crate::query::{IndexHandle, ResultCache, RouteQuery, DEFAULT_RESULT_CACHE};
use govhost_core::evolve::Timeline;
use govhost_core::prelude::*;
use govhost_obs::export::{metrics_text, trace_level, TimeMode};
use govhost_obs::{Labels, Telemetry};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The route patterns the server exposes, used verbatim as the `route`
/// label on every HTTP metric (bounded cardinality by construction).
pub const ROUTES: [&str; 12] = [
    "/healthz",
    "/countries",
    "/country/{iso}",
    "/country/{iso}/history",
    "/flows",
    "/providers",
    "/providers/{name}/history",
    "/hhi",
    "/hhi/history",
    "/scenario/{name}",
    "/scenario/{name}/diff",
    "/metrics",
];

/// An immutable byte payload that can be handed around without copying:
/// either a `'static` fragment (the canned `Connection:` lines) or a
/// shared slab (`Arc<[u8]>` — precomputed route heads and bodies).
#[derive(Debug, Clone)]
pub enum Bytes {
    /// Borrowed from static storage.
    Static(&'static [u8]),
    /// A shared immutable slab; cloning bumps a refcount.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// The payload as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(b) => b,
            Bytes::Shared(b) => b,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::Shared(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::Static(b)
    }
}

/// The static `Connection:` fragment that terminates every header block.
const CONN_KEEP_ALIVE: &[u8] = b"Connection: keep-alive\r\n\r\n";
const CONN_CLOSE: &[u8] = b"Connection: close\r\n\r\n";

/// Everything that goes into a rendered header slab.
pub(crate) struct HeadSpec<'a> {
    pub status: u16,
    pub reason: &'static str,
    pub content_type: &'a str,
    /// `Content-Length` to declare; `None` omits the header entirely.
    /// `304`s omit it: per RFC 9110 §8.6 a Content-Length there would
    /// describe the `200` representation, and a literal `0` misleads
    /// caches that update stored metadata from `304` headers.
    pub content_length: Option<usize>,
    /// Emitted as an `ETag` header when present.
    pub etag: Option<&'a str>,
    /// Whether to advertise `Allow: GET, HEAD` (405 responses).
    pub allow_get: bool,
    /// Whether to advertise `Retry-After: 1` (503 shed responses).
    pub retry_after: bool,
}

/// Render the header slab: status line through the last fixed header
/// (ending in `\r\n`), *excluding* the `Connection:` line — that is a
/// static fragment appended at send time. The server never emits a
/// `Date` header: responses must be byte-stable across runs.
pub(crate) fn render_head(spec: &HeadSpec<'_>) -> String {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nServer: govhost-serve\r\nContent-Type: {}\r\n",
        spec.status, spec.reason, spec.content_type
    );
    if let Some(length) = spec.content_length {
        head.push_str(&format!("Content-Length: {length}\r\n"));
    }
    if let Some(etag) = spec.etag {
        head.push_str("ETag: ");
        head.push_str(etag);
        head.push_str("\r\n");
    }
    if spec.allow_get {
        head.push_str("Allow: GET, HEAD\r\n");
    }
    if spec.retry_after {
        head.push_str("Retry-After: 1\r\n");
    }
    head
}

/// One response: a precomputed header slab plus the body slab. Cloning
/// is cheap (`Arc` bumps), so the precomputed route responses are
/// cloned out of the [`QueryIndex`] per request without copying bytes.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Canonical reason phrase.
    pub reason: &'static str,
    head: Bytes,
    body: Bytes,
}

impl Response {
    /// Assemble a response from a rendered head and a body slab. The
    /// head must be what [`render_head`] produced for this body.
    pub(crate) fn from_parts(status: u16, reason: &'static str, head: Bytes, body: Bytes) -> Response {
        Response { status, reason, head, body }
    }

    /// Render a dynamic response (errors, `/metrics`): the head is
    /// built here, the body is the given bytes.
    pub(crate) fn dynamic(spec: &HeadSpec<'_>, body: Vec<u8>) -> Response {
        debug_assert_eq!(spec.content_length, Some(body.len()));
        Response {
            status: spec.status,
            reason: spec.reason,
            head: Bytes::from(render_head(spec).into_bytes()),
            body: Bytes::from(body),
        }
    }

    /// The JSON error representation of a typed [`HttpError`].
    pub fn from_error(err: &HttpError) -> Response {
        let body = format!(
            "{{\"error\":{},\"reason\":\"{}\",\"detail\":\"{}\"}}",
            err.status(),
            err.reason(),
            govhost_obs::export::escape_json(err.detail())
        )
        .into_bytes();
        Response::dynamic(
            &HeadSpec {
                status: err.status(),
                reason: err.reason(),
                content_type: "application/json",
                content_length: Some(body.len()),
                etag: None,
                allow_get: matches!(err, HttpError::MethodNotAllowed),
                retry_after: matches!(err, HttpError::Overloaded),
            },
            body,
        )
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        self.body.as_slice()
    }

    /// Strip the body for a `HEAD` answer. The head slab is untouched,
    /// so `Content-Length` and `ETag` still describe the `GET`
    /// representation — exactly what RFC 9110 §9.3.2 requires — while
    /// zero body bytes go on the wire.
    pub(crate) fn into_head_only(mut self) -> Response {
        self.body = Bytes::Static(b"");
        self
    }

    /// The three wire segments of this response — header slab,
    /// `Connection:` fragment, body slab — ready for a vectored write.
    /// No byte is copied: the slabs are shared and the fragment is
    /// static.
    pub fn segments(&self, keep_alive: bool) -> [Bytes; 3] {
        let conn = if keep_alive { CONN_KEEP_ALIVE } else { CONN_CLOSE };
        [self.head.clone(), Bytes::Static(conn), self.body.clone()]
    }

    /// Serialize status line, headers, and body into one owned buffer
    /// (the copying convenience for tests; the serving paths use
    /// [`Response::segments`]).
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let segs = self.segments(keep_alive);
        let mut out = Vec::with_capacity(segs.iter().map(Bytes::len).sum());
        for seg in &segs {
            out.extend_from_slice(seg.as_slice());
        }
        out
    }
}

/// The route label a path falls under (`"other"` for unknown paths,
/// bounding metric cardinality no matter what clients request).
pub fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/countries" => "/countries",
        "/flows" => "/flows",
        "/providers" => "/providers",
        "/hhi" => "/hhi",
        "/hhi/history" => "/hhi/history",
        "/metrics" => "/metrics",
        p if strip_history(p, "/country/").is_some() => "/country/{iso}/history",
        p if strip_history(p, "/providers/").is_some() => "/providers/{name}/history",
        p if p.starts_with("/country/") => "/country/{iso}",
        p if matches!(scenario_target(p), Some((_, true))) => "/scenario/{name}/diff",
        p if scenario_target(p).is_some() => "/scenario/{name}",
        _ => "other",
    }
}

/// Recognize `/scenario/{name}` and `/scenario/{name}/diff`, returning
/// the (non-empty) name and whether the diff view was addressed.
fn scenario_target(path: &str) -> Option<(&str, bool)> {
    let rest = path.strip_prefix("/scenario/")?;
    let (name, diff) = match rest.strip_suffix("/diff") {
        Some(name) => (name, true),
        None => (rest, false),
    };
    if name.is_empty() {
        None
    } else {
        Some((name, diff))
    }
}

/// The `{segment}` of `<prefix>{segment}/history`, when `path` has that
/// shape with a non-empty segment.
fn strip_history<'a>(path: &'a str, prefix: &str) -> Option<&'a str> {
    let segment = path.strip_prefix(prefix)?.strip_suffix("/history")?;
    if segment.is_empty() {
        None
    } else {
        Some(segment)
    }
}

/// Which history series a path addresses.
enum HistoryTarget<'a> {
    Hhi,
    Country(&'a str),
    Provider(&'a str),
}

/// Recognize the three history routes.
fn history_target(path: &str) -> Option<HistoryTarget<'_>> {
    if path == "/hhi/history" {
        return Some(HistoryTarget::Hhi);
    }
    if let Some(iso) = strip_history(path, "/country/") {
        return Some(HistoryTarget::Country(iso));
    }
    if let Some(name) = strip_history(path, "/providers/") {
        return Some(HistoryTarget::Provider(name));
    }
    None
}

/// Whether an `If-None-Match` header value matches `etag`: the
/// wildcard `*`, or any comma-separated entry equal to the (strong)
/// entity tag, with an optional `W/` weak prefix tolerated. Garbage
/// values simply fail to match and the full body is served.
pub fn if_none_match(header: &str, etag: &str) -> bool {
    header.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate == etag || candidate.strip_prefix("W/") == Some(etag)
    })
}

/// Everything a worker needs to answer requests: the hot-swappable
/// index handle, the bounded result cache for parameterized queries,
/// and the telemetry accounting.
#[derive(Debug)]
pub struct ServeState {
    index: IndexHandle,
    /// Rendered parameterized results, keyed by canonical query.
    cache: ResultCache,
    /// The dataset's build capture plus the index-build capture —
    /// the baseline `/metrics` starts from.
    base: Telemetry,
    /// Request-side telemetry, accumulated under a mutex (merge-based,
    /// so the capture is order-blind like the build-side shards).
    requests: Mutex<Telemetry>,
    /// The canned 503 sent when a connection is shed (prebuilt once:
    /// shedding must not allocate under load).
    overloaded: Response,
    /// Prerendered scenario slabs, when `serve --scenario` loaded any.
    scenarios: Option<Arc<crate::scenario::ScenarioIndex>>,
    mode: TimeMode,
}

impl ServeState {
    /// Build the index and state from a dataset, reading the export
    /// mode from `GOVHOST_TRACE` (verbose keeps real latency numbers in
    /// `/metrics`; the default stays deterministic).
    pub fn new(dataset: &GovDataset) -> ServeState {
        ServeState::with_mode(dataset, trace_level().time_mode())
    }

    /// Like [`ServeState::new`] but with an explicit result-cache
    /// capacity (the CLI's `--query-cache`; zero disables caching).
    pub fn with_cache_capacity(dataset: &GovDataset, cache_capacity: usize) -> ServeState {
        ServeState::with_config(dataset, trace_level().time_mode(), cache_capacity)
    }

    /// Build with an explicit `/metrics` time mode (tests pin the
    /// deterministic one regardless of environment) and the default
    /// result-cache capacity.
    pub fn with_mode(dataset: &GovDataset, mode: TimeMode) -> ServeState {
        ServeState::with_config(dataset, mode, DEFAULT_RESULT_CACHE)
    }

    /// Build with an explicit time mode and result-cache capacity
    /// (`--query-cache` on the CLI; zero disables caching).
    pub fn with_config(
        dataset: &GovDataset,
        mode: TimeMode,
        cache_capacity: usize,
    ) -> ServeState {
        Self::assemble(dataset, None, mode, cache_capacity)
    }

    /// Build with an evolved multi-year [`Timeline`] behind the history
    /// routes (the CLI's `serve --years N` path), with the default
    /// result-cache capacity.
    pub fn with_timeline(dataset: &GovDataset, timeline: &Timeline, mode: TimeMode) -> ServeState {
        Self::assemble(dataset, Some(timeline), mode, DEFAULT_RESULT_CACHE)
    }

    /// Like [`ServeState::with_timeline`] but with the time mode taken
    /// from the environment and an explicit result-cache capacity (the
    /// CLI's `serve --years N` path).
    pub fn with_timeline_cache_capacity(
        dataset: &GovDataset,
        timeline: &Timeline,
        cache_capacity: usize,
    ) -> ServeState {
        Self::assemble(dataset, Some(timeline), trace_level().time_mode(), cache_capacity)
    }

    /// [`ServeState::with_timeline`] with an explicit result-cache
    /// capacity.
    pub fn with_timeline_config(
        dataset: &GovDataset,
        timeline: &Timeline,
        mode: TimeMode,
        cache_capacity: usize,
    ) -> ServeState {
        Self::assemble(dataset, Some(timeline), mode, cache_capacity)
    }

    fn assemble(
        dataset: &GovDataset,
        timeline: Option<&Timeline>,
        mode: TimeMode,
        cache_capacity: usize,
    ) -> ServeState {
        let (index, build_capture) = govhost_obs::collect(|| {
            let _span = govhost_obs::span!("serve.index");
            let index = match timeline {
                Some(timeline) => QueryIndex::with_timeline(dataset, timeline),
                None => QueryIndex::build(dataset),
            };
            govhost_obs::counter_add("serve.index.countries", &[], index.country_count() as u64);
            index
        });
        let mut base = dataset.telemetry.clone();
        base.merge(&build_capture);
        let mut requests = Telemetry::new();
        // Declare the shed and cache counters up front so `/metrics`
        // always shows them — a zero there is a meaningful signal, not
        // a missing series.
        requests.registry.declare_counter("http.shed", Labels::empty());
        for outcome in ["hit", "miss", "eviction"] {
            requests
                .registry
                .declare_counter("http.query_cache", Labels::new(&[("outcome", outcome)]));
        }
        ServeState {
            index: IndexHandle::new(index),
            cache: ResultCache::new(cache_capacity),
            base,
            requests: Mutex::new(requests),
            overloaded: Response::from_error(&HttpError::Overloaded),
            scenarios: None,
            mode,
        }
    }

    /// Attach prerendered scenario slabs: `/scenario/{name}` and
    /// `/scenario/{name}/diff` answer from them. The slabs are shared
    /// (`Arc`) across every worker, so scenario bytes are pinned no
    /// matter which worker serves the request.
    pub fn with_scenarios(mut self, scenarios: crate::scenario::ScenarioIndex) -> ServeState {
        self.scenarios = Some(Arc::new(scenarios));
        self
    }

    /// The `/metrics` time mode in effect.
    pub fn time_mode(&self) -> TimeMode {
        self.mode
    }

    /// A snapshot of the currently-served query index (an `Arc` bump;
    /// a concurrent [`ServeState::swap_index`] does not disturb it).
    pub fn index(&self) -> Arc<QueryIndex> {
        self.index.load()
    }

    /// The parameterized-query result cache.
    pub fn result_cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Hot-swap the served index with zero downtime: in-flight requests
    /// finish against the index they snapshotted, new requests see
    /// `next`, and the result cache is atomically invalidated (its
    /// epoch bump also drops in-flight renders against the old index).
    pub fn swap_index(&self, next: QueryIndex) {
        self.index.swap(next);
        self.cache.invalidate();
    }

    /// A merged snapshot of build-time and request-time telemetry.
    pub fn telemetry_snapshot(&self) -> Telemetry {
        let mut snap = self.base.clone();
        let requests = self.requests.lock().expect("telemetry lock");
        snap.merge(&requests);
        snap
    }

    /// Account one shed connection and hand back the canned
    /// `503 Retry-After` response to write before hanging up. The shed
    /// count lands in `/metrics` as `http_shed` plus a `5xx` response
    /// under the reserved `shed` route label, and the response-byte /
    /// latency histograms observe the shed like any other response —
    /// they must not undercount exactly when the server is overloaded.
    pub fn shed(&self) -> Response {
        let mut t = self.requests.lock().expect("telemetry lock");
        t.registry.add_counter("http.shed", Labels::empty(), 1);
        t.registry.add_counter(
            "http.responses",
            Labels::new(&[("route", "shed"), ("class", "5xx")]),
            1,
        );
        let labels = Labels::new(&[("route", "shed")]);
        t.registry.observe(
            "http.response_bytes",
            labels.clone(),
            self.overloaded.body().len() as u64,
        );
        // The canned 503 is prebuilt, so its serving latency is the
        // write itself; observe zero rather than invent a number.
        t.registry.observe("http.latency_ns", labels, 0);
        self.overloaded.clone()
    }

    /// How many connections have been shed so far.
    pub fn shed_count(&self) -> u64 {
        self.requests.lock().expect("telemetry lock").registry.counter_total("http.shed")
    }

    /// Answer one parse outcome: route, handle, and account the
    /// exchange into the request telemetry.
    pub fn respond(&self, parsed: Result<&Request, &HttpError>) -> Response {
        let start = Instant::now();
        let route = match parsed {
            Ok(req) => route_label(req.path()),
            Err(_) => "error",
        };
        {
            let mut t = self.requests.lock().expect("telemetry lock");
            t.registry.add_counter("http.requests", Labels::new(&[("route", route)]), 1);
        }
        let response = match parsed {
            Err(err) => Response::from_error(err),
            Ok(req) if req.method != "GET" && req.method != "HEAD" => {
                Response::from_error(&HttpError::MethodNotAllowed)
            }
            // HEAD runs the full GET pipeline (routing, conditionals,
            // accounting), then drops the body: the head slab already
            // describes the 200 representation (RFC 9110 §9.3.2).
            Ok(req) if req.method == "HEAD" => self.handle(req).into_head_only(),
            Ok(req) => self.handle(req),
        };
        let latency_ns = start.elapsed().as_nanos() as u64;
        let class = match response.status {
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        let mut t = self.requests.lock().expect("telemetry lock");
        let labels = Labels::new(&[("route", route)]);
        t.registry.add_counter(
            "http.responses",
            Labels::new(&[("route", route), ("class", class)]),
            1,
        );
        t.registry.observe("http.response_bytes", labels.clone(), response.body().len() as u64);
        t.registry.observe("http.latency_ns", labels, latency_ns);
        response
    }

    /// Serve a precomputed slab, honouring `If-None-Match`: a matching
    /// entity tag answers `304 Not Modified` with an empty body.
    fn conditional(&self, req: &Request, slab: &RouteSlab) -> Response {
        match req.header("if-none-match") {
            Some(header) if if_none_match(header, slab.etag()) => slab.not_modified(),
            _ => slab.ok(),
        }
    }

    /// Dispatch a `GET` (or `HEAD`, body-stripped by the caller)
    /// against the index.
    fn handle(&self, req: &Request) -> Response {
        let path = req.path();
        // History routes resolve against the timeline series (and take
        // their own parameter grammar), so they dispatch first — before
        // the `/country/{iso}` suffix rules could swallow the path.
        if let Some(target) = history_target(path) {
            return self.history(req, target);
        }
        // The three parameterized routes go through the query engine
        // whenever the query string carries parameters.
        if matches!(path, "/flows" | "/providers" | "/countries") {
            return self.parameterized(req);
        }
        // Scenario routes serve prerendered slabs. They take no
        // parameters, and the typed 400 outranks the 404 (a bad query
        // on an unknown scenario is still a bad query).
        if path.starts_with("/scenario/") || path == "/scenario" {
            if let Some(raw) = req.query() {
                if let Err(err) = crate::query::reject_params(raw) {
                    return Response::from_error(&err);
                }
            }
            let slab = scenario_target(path).and_then(|(name, diff)| {
                let scenarios = self.scenarios.as_ref()?;
                if diff {
                    scenarios.diff_slab(name)
                } else {
                    scenarios.report_slab(name)
                }
            });
            return match slab {
                Some(slab) => self.conditional(req, slab),
                None => Response::from_error(&HttpError::NotFound),
            };
        }
        // Fixed routes take no parameters: anything in the query string
        // is a typed 400 naming the parameter, never a silent alias
        // onto the cached representation.
        if let Some(raw) = req.query() {
            if let Err(err) = crate::query::reject_params(raw) {
                return Response::from_error(&err);
            }
        }
        let index = self.index.load();
        match path {
            "/healthz" => self.conditional(req, index.healthz_slab()),
            "/hhi" => self.conditional(req, index.hhi_slab()),
            "/metrics" => {
                let body =
                    metrics_text(&self.telemetry_snapshot(), self.mode).into_bytes();
                Response::dynamic(
                    &HeadSpec {
                        status: 200,
                        reason: "OK",
                        content_type: "text/plain; charset=utf-8",
                        content_length: Some(body.len()),
                        etag: None,
                        allow_get: false,
                        retry_after: false,
                    },
                    body,
                )
            }
            p => {
                // Country codes are exactly two ASCII letters, so the
                // case fold happens in a stack buffer — no per-request
                // allocation, and multibyte lookalikes (U+212A KELVIN
                // SIGN folds to 'k' under Unicode rules) can never
                // match because only ASCII bytes are folded.
                if let Some(iso) = p.strip_prefix("/country/") {
                    if let &[a, b] = iso.as_bytes() {
                        let upper = [a.to_ascii_uppercase(), b.to_ascii_uppercase()];
                        if let Some(slab) = std::str::from_utf8(&upper)
                            .ok()
                            .and_then(|code| index.country_slab(code))
                        {
                            return self.conditional(req, slab);
                        }
                    }
                }
                Response::from_error(&HttpError::NotFound)
            }
        }
    }

    /// Serve one of `/flows`, `/providers`, `/countries`: the
    /// precomputed base slab when the query string is empty (the PR-6
    /// bodies, byte-identical), otherwise parse → cache probe →
    /// execute → insert.
    fn parameterized(&self, req: &Request) -> Response {
        let path = req.path();
        let raw = req.query().unwrap_or("");
        if raw.split('&').all(str::is_empty) {
            let index = self.index.load();
            let slab = match path {
                "/flows" => index.flows_slab(),
                "/providers" => index.providers_slab(),
                _ => index.countries_slab(),
            };
            return self.conditional(req, slab);
        }
        let query = match RouteQuery::parse(path, raw) {
            Ok(query) => query,
            Err(err) => return Response::from_error(&err),
        };
        let key = query.cache_key();
        // Epoch before index load: a swap between the two bumps the
        // epoch, so this render cannot repopulate the cache with bytes
        // from the displaced index.
        let epoch = self.cache.epoch();
        if let Some(slab) = self.cache.get(&key) {
            self.count_cache_outcome("hit");
            return self.conditional(req, &slab);
        }
        self.count_cache_outcome("miss");
        let index = self.index.load();
        let slab = Arc::new(RouteSlab::json(query.execute(&index)));
        if self.cache.insert(key, slab.clone(), epoch) {
            self.count_cache_outcome("eviction");
        }
        self.conditional(req, &slab)
    }

    /// Serve one history route: parameterless requests answer the
    /// precomputed full-series slab; a parameterized request parses
    /// (typed `400`s *before* target resolution, so a bad query never
    /// masquerades as a missing target), resolves the series (`404`
    /// when the country or provider is unknown), and goes through the
    /// result cache exactly like [`ServeState::parameterized`] — epoch
    /// read before the index load, so a concurrent swap drops the
    /// stale insert.
    fn history(&self, req: &Request, target: HistoryTarget<'_>) -> Response {
        let raw = req.query().unwrap_or("");
        let params = if raw.split('&').all(str::is_empty) {
            None
        } else {
            match crate::query::HistoryParams::parse(raw) {
                Ok(params) => Some(params),
                Err(err) => return Response::from_error(&err),
            }
        };
        let epoch = self.cache.epoch();
        let index = self.index.load();
        let timeline = index.timeline();
        let (route, series) = match target {
            HistoryTarget::Hhi => ("/hhi/history".to_string(), timeline.hhi()),
            HistoryTarget::Country(iso) => {
                // The same allocation-free ASCII fold as `/country/{iso}`.
                let resolved = match iso.as_bytes() {
                    &[a, b] => {
                        let upper = [a.to_ascii_uppercase(), b.to_ascii_uppercase()];
                        std::str::from_utf8(&upper)
                            .ok()
                            .and_then(|code| timeline.country(code).map(|s| (code.to_string(), s)))
                    }
                    _ => None,
                };
                match resolved {
                    Some((code, series)) => (format!("/country/{code}/history"), series),
                    None => return Response::from_error(&HttpError::NotFound),
                }
            }
            HistoryTarget::Provider(name) => match timeline.provider(name) {
                Some((asn, p)) => (format!("/providers/AS{asn}/history"), &p.series),
                None => return Response::from_error(&HttpError::NotFound),
            },
        };
        let Some(params) = params else {
            return self.conditional(req, &series.slab);
        };
        let key = format!("{}?{}", route, params.canonical());
        if let Some(slab) = self.cache.get(&key) {
            self.count_cache_outcome("hit");
            return self.conditional(req, &slab);
        }
        self.count_cache_outcome("miss");
        let slab = Arc::new(RouteSlab::json(series.execute(&route, &params)));
        if self.cache.insert(key, slab.clone(), epoch) {
            self.count_cache_outcome("eviction");
        }
        self.conditional(req, &slab)
    }

    fn count_cache_outcome(&self, outcome: &str) {
        let mut t = self.requests.lock().expect("telemetry lock");
        t.registry.add_counter("http.query_cache", Labels::new(&[("outcome", outcome)]), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Limits, RequestParser};
    use govhost_worldgen::prelude::*;

    fn state() -> ServeState {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        ServeState::with_mode(&dataset, TimeMode::Deterministic)
    }

    fn get(state: &ServeState, path: &str) -> Response {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let req = parser.next_request().unwrap().unwrap();
        state.respond(Ok(&req))
    }

    #[test]
    fn every_route_answers_200() {
        let state = state();
        for path in ["/healthz", "/countries", "/flows", "/providers", "/hhi", "/metrics"] {
            assert_eq!(get(&state, path).status, 200, "{path}");
        }
    }

    #[test]
    fn country_lookup_is_case_insensitive_and_404s_unknowns() {
        let state = state();
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        let code = dataset.countries()[0];
        let lower = code.as_str().to_ascii_lowercase();
        assert_eq!(get(&state, &format!("/country/{code}")).status, 200);
        assert_eq!(get(&state, &format!("/country/{lower}")).status, 200);
        assert_eq!(get(&state, "/country/ZZ").status, 404);
        assert_eq!(get(&state, "/nope").status, 404);
        // ASCII-only folding: Unicode lookalikes that case-fold into an
        // ASCII letter (U+212A KELVIN SIGN → 'k', U+017F LONG S → 's')
        // must stay 404 for every served country code.
        for code in dataset.countries() {
            let folded: String = code
                .as_str()
                .chars()
                .map(|c| match c {
                    'K' => '\u{212A}',
                    'S' => '\u{017F}',
                    c => c,
                })
                .collect();
            if folded.as_str() != code.as_str() {
                assert_eq!(get(&state, &format!("/country/{folded}")).status, 404, "{code}");
            }
        }
    }

    #[test]
    fn non_get_methods_are_405_with_allow() {
        let state = state();
        let mut parser = RequestParser::new(Limits::default());
        parser.push(b"POST /hhi HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        let req = parser.next_request().unwrap().unwrap();
        let resp = state.respond(Ok(&req));
        assert_eq!(resp.status, 405);
        let encoded = String::from_utf8(resp.encode(false)).unwrap();
        assert!(encoded.contains("Allow: GET, HEAD\r\n"));
        assert!(encoded.contains("Connection: close\r\n"));
    }

    #[test]
    fn head_serves_the_get_head_slab_with_no_body() {
        let state = state();
        let get_resp = get(&state, "/hhi");
        let mut parser = RequestParser::new(Limits::default());
        parser.push(b"HEAD /hhi HTTP/1.1\r\n\r\n");
        let req = parser.next_request().unwrap().unwrap();
        let head_resp = state.respond(Ok(&req));
        assert_eq!(head_resp.status, 200);
        assert!(head_resp.body().is_empty(), "HEAD sends zero body bytes");
        let get_encoded = get_resp.encode(true);
        let head_encoded = head_resp.encode(true);
        let get_head = &get_encoded[..get_encoded.len() - get_resp.body().len()];
        assert_eq!(
            head_encoded, get_head,
            "HEAD headers are byte-identical to GET's, Content-Length included"
        );
    }

    #[test]
    fn query_strings_on_fixed_routes_are_typed_400s() {
        let state = state();
        let resp = get(&state, "/hhi?verbose=1");
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body().to_vec()).unwrap();
        assert!(body.contains("verbose"), "names the parameter: {body}");
        // A bare '?' carries no parameters and serves the base slab.
        assert_eq!(get(&state, "/hhi?").status, 200);
        assert_eq!(get(&state, "/metrics?x=1").status, 400);
    }

    #[test]
    fn parameterized_queries_hit_the_cache_and_count_outcomes() {
        let state = state();
        let miss = get(&state, "/flows?sort=share&limit=5");
        let hit = get(&state, "/flows?limit=5&sort=share");
        assert_eq!(miss.status, 200);
        assert_eq!(
            miss.encode(true),
            hit.encode(true),
            "hit and miss are byte-identical for one canonical query"
        );
        let snap = state.telemetry_snapshot();
        assert_eq!(
            snap.registry.counter_filtered("http.query_cache", &[("outcome", "miss")]),
            1
        );
        assert_eq!(
            snap.registry.counter_filtered("http.query_cache", &[("outcome", "hit")]),
            1
        );
        assert_eq!(state.result_cache().len(), 1);
    }

    #[test]
    fn metrics_declares_cache_counters_at_zero() {
        let state = state();
        let metrics = String::from_utf8(get(&state, "/metrics").body().to_vec()).unwrap();
        for outcome in ["hit", "miss", "eviction"] {
            assert!(
                metrics.contains(&format!("http_query_cache{{outcome=\"{outcome}\"}} 0")),
                "{outcome} declared at zero: {metrics}"
            );
        }
    }

    #[test]
    fn swap_invalidates_the_result_cache() {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        let state = ServeState::with_mode(&dataset, TimeMode::Deterministic);
        let before = get(&state, "/providers?sort=asn");
        assert_eq!(state.result_cache().len(), 1);
        state.swap_index(QueryIndex::build(&dataset));
        assert!(state.result_cache().is_empty(), "swap clears cached results");
        let after = get(&state, "/providers?sort=asn");
        assert_eq!(
            before.encode(true),
            after.encode(true),
            "identical-input swap leaves response bytes unchanged"
        );
    }

    #[test]
    fn encode_equals_concatenated_segments() {
        let state = state();
        let resp = get(&state, "/healthz");
        for keep in [true, false] {
            let mut joined = Vec::new();
            for seg in resp.segments(keep) {
                joined.extend_from_slice(seg.as_slice());
            }
            assert_eq!(joined, resp.encode(keep));
        }
    }

    #[test]
    fn conditional_get_answers_304_with_the_same_etag() {
        let state = state();
        let full = get(&state, "/hhi");
        let encoded = String::from_utf8(full.encode(false)).unwrap();
        let etag = encoded
            .lines()
            .find_map(|l| l.strip_prefix("ETag: "))
            .expect("precomputed routes carry an ETag")
            .to_string();
        let raw = format!("GET /hhi HTTP/1.1\r\nIf-None-Match: {etag}\r\n\r\n");
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let req = parser.next_request().unwrap().unwrap();
        let resp = state.respond(Ok(&req));
        assert_eq!(resp.status, 304);
        assert!(resp.body().is_empty(), "304 has no body");
        let encoded304 = String::from_utf8(resp.encode(false)).unwrap();
        assert!(encoded304.contains(&format!("ETag: {etag}\r\n")), "{encoded304}");
    }

    #[test]
    fn if_none_match_handles_lists_wildcards_and_garbage() {
        assert!(if_none_match("*", "\"abc\""));
        assert!(if_none_match("\"x\", \"abc\"", "\"abc\""));
        assert!(if_none_match("W/\"abc\"", "\"abc\""));
        assert!(!if_none_match("\"x\", \"y\"", "\"abc\""));
        assert!(!if_none_match("garbage", "\"abc\""));
        assert!(!if_none_match("", "\"abc\""));
    }

    #[test]
    fn shed_is_a_typed_503_with_retry_after_and_is_counted() {
        let state = state();
        assert_eq!(state.shed_count(), 0);
        let resp = state.shed();
        assert_eq!(resp.status, 503);
        let encoded = String::from_utf8(resp.encode(false)).unwrap();
        assert!(encoded.starts_with("HTTP/1.1 503 Service Unavailable"), "{encoded}");
        assert!(encoded.contains("Retry-After: 1\r\n"), "{encoded}");
        assert!(encoded.contains("server overloaded"), "{encoded}");
        assert_eq!(state.shed_count(), 1);
        let metrics = String::from_utf8(get(&state, "/metrics").body().to_vec()).unwrap();
        assert!(metrics.contains("http_shed 1"), "{metrics}");
        assert!(
            metrics.contains("http_responses{class=\"5xx\",route=\"shed\"} 1"),
            "{metrics}"
        );
    }

    #[test]
    fn metrics_always_exposes_the_shed_counter() {
        let state = state();
        let metrics = String::from_utf8(get(&state, "/metrics").body().to_vec()).unwrap();
        assert!(metrics.contains("http_shed 0"), "declared at zero: {metrics}");
    }

    #[test]
    fn requests_are_accounted_per_route_and_class() {
        let state = state();
        let _ = get(&state, "/hhi");
        let _ = get(&state, "/hhi");
        let _ = get(&state, "/nope");
        let snap = state.telemetry_snapshot();
        assert_eq!(
            snap.registry.counter_filtered("http.requests", &[("route", "/hhi")]),
            2
        );
        assert_eq!(
            snap.registry.counter_filtered("http.responses", &[("class", "4xx")]),
            1
        );
        assert_eq!(snap.registry.counter_total("http.latency_ns"), 0, "latency is a histogram");
    }

    #[test]
    fn history_routes_answer_with_etag_slabs_and_use_the_cache() {
        let state = state();
        // Parameterless: the precomputed slab, ETag included, 304-able.
        let full = get(&state, "/hhi/history");
        assert_eq!(full.status, 200);
        let encoded = String::from_utf8(full.encode(false)).unwrap();
        let etag = encoded
            .lines()
            .find_map(|l| l.strip_prefix("ETag: "))
            .expect("history slabs carry an ETag")
            .to_string();
        let raw = format!("GET /hhi/history HTTP/1.1\r\nIf-None-Match: {etag}\r\n\r\n");
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let req = parser.next_request().unwrap().unwrap();
        assert_eq!(state.respond(Ok(&req)).status, 304);
        // Parameterized: lands in the result cache like /flows does.
        let miss = get(&state, "/hhi/history?from=0&limit=10");
        let hit = get(&state, "/hhi/history?limit=10&from=0");
        assert_eq!(miss.status, 200);
        assert_eq!(miss.encode(true), hit.encode(true), "one canonical query, one entry");
        assert_eq!(state.result_cache().len(), 1);
    }

    #[test]
    fn history_targets_resolve_fold_and_404() {
        let state = state();
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        let code = dataset.countries()[0];
        let lower = code.as_str().to_ascii_lowercase();
        assert_eq!(get(&state, &format!("/country/{code}/history")).status, 200);
        assert_eq!(get(&state, &format!("/country/{lower}/history")).status, 200);
        assert_eq!(get(&state, "/country/ZZ/history").status, 404);
        assert_eq!(get(&state, "/providers/AS13335/history").status, 200);
        assert_eq!(get(&state, "/providers/13335/history").status, 200);
        assert_eq!(get(&state, "/providers/AS99999/history").status, 404);
        assert_eq!(get(&state, "/providers/Nobody%20Inc./history").status, 404);
        // By org name, case-folded, percent-encoded on the wire.
        let body = String::from_utf8(get(&state, "/providers/AS13335/history").body().to_vec())
            .unwrap();
        assert!(body.contains("\"org\":\"Cloudflare, Inc.\""), "{body}");
        assert_eq!(get(&state, "/providers/cloudflare,%20inc./history").status, 200);
    }

    #[test]
    fn history_validates_before_resolving_and_labels_routes() {
        let state = state();
        // 400 before 404: a bad parameter on an unknown target is a 400.
        let resp = get(&state, "/country/ZZ/history?from=x");
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body().to_vec()).unwrap();
        assert!(body.contains("parameter \\\"from\\\""), "names the parameter: {body}");
        assert_eq!(get(&state, "/hhi/history?verbose=1").status, 400);
        assert_eq!(route_label("/hhi/history"), "/hhi/history");
        assert_eq!(route_label("/country/US/history"), "/country/{iso}/history");
        assert_eq!(route_label("/providers/AS13335/history"), "/providers/{name}/history");
        assert_eq!(route_label("/country//history"), "/country/{iso}");
        assert_eq!(route_label("/providers//history"), "other");
        for route in ROUTES {
            assert!(!route.is_empty());
        }
    }

    #[test]
    fn scenario_routes_serve_slabs_400_params_and_404_unknowns() {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        // No scenarios attached: everything under /scenario/ is a 404,
        // but a bad query is still a 400 (400-before-404).
        let bare = ServeState::with_mode(&dataset, TimeMode::Deterministic);
        assert_eq!(get(&bare, "/scenario/quake").status, 404);
        assert_eq!(get(&bare, "/scenario/quake?x=1").status, 400);
        let file = govhost_scenario::parse("scenario quake\noutage provider AS13335\n").unwrap();
        let runs = govhost_scenario::run_file(
            &GenParams::tiny(),
            &file,
            &BuildOptions::default(),
        )
        .unwrap();
        let state = ServeState::with_mode(&dataset, TimeMode::Deterministic)
            .with_scenarios(crate::scenario::ScenarioIndex::build(&runs));
        let report = get(&state, "/scenario/quake");
        assert_eq!(report.status, 200);
        let body = String::from_utf8(report.body().to_vec()).unwrap();
        assert!(body.starts_with("{\"scenario\":\"quake\""), "{body}");
        assert!(body.contains("\"cards\":["), "{body}");
        let diff = get(&state, "/scenario/quake/diff");
        assert_eq!(diff.status, 200);
        let diff_body = String::from_utf8(diff.body().to_vec()).unwrap();
        assert!(diff_body.contains("\"global\":["), "{diff_body}");
        // Unknowns, empty names, and parameters.
        assert_eq!(get(&state, "/scenario/nope").status, 404);
        assert_eq!(get(&state, "/scenario/nope/diff").status, 404);
        assert_eq!(get(&state, "/scenario/").status, 404);
        assert_eq!(get(&state, "/scenario").status, 404);
        let bad = get(&state, "/scenario/quake?verbose=1");
        assert_eq!(bad.status, 400);
        let bad_body = String::from_utf8(bad.body().to_vec()).unwrap();
        assert!(bad_body.contains("verbose"), "names the parameter: {bad_body}");
        // Conditional GET against the slab's ETag.
        let encoded = String::from_utf8(report.encode(false)).unwrap();
        let etag = encoded
            .lines()
            .find_map(|l| l.strip_prefix("ETag: "))
            .expect("scenario slabs carry an ETag")
            .to_string();
        let raw = format!("GET /scenario/quake HTTP/1.1\r\nIf-None-Match: {etag}\r\n\r\n");
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let req = parser.next_request().unwrap().unwrap();
        assert_eq!(state.respond(Ok(&req)).status, 304);
        // Route labels stay bounded.
        assert_eq!(route_label("/scenario/quake"), "/scenario/{name}");
        assert_eq!(route_label("/scenario/quake/diff"), "/scenario/{name}/diff");
        assert_eq!(route_label("/scenario/"), "other");
        assert_eq!(route_label("/scenario"), "other");
    }

    #[test]
    fn metrics_route_sees_its_own_arrival() {
        let state = state();
        let body = String::from_utf8(get(&state, "/metrics").body().to_vec()).unwrap();
        assert!(
            body.contains("http_requests{route=\"/metrics\"} 1"),
            "arrival counter precedes rendering: {body}"
        );
        assert!(body.contains("# TYPE serve_index_countries counter"));
    }
}

//! Route dispatch, response encoding, and per-request instrumentation.
//!
//! [`ServeState`] is the shared immutable heart of the server: the
//! precomputed [`QueryIndex`], the dataset's build-time telemetry, and
//! a mutex-guarded request-telemetry capture that every response is
//! accounted into — per-route request counters, status-class counters,
//! and response-byte / latency histograms, all through the
//! `govhost-obs` registry. `/metrics` renders the merged capture with
//! [`metrics_text`], whose deterministic mode keeps the exposition
//! byte-stable across runs and worker counts (latency series follow the
//! `_ns` naming convention and are zeroed there).
//!
//! Accounting order matters for determinism under sequential clients:
//! a request's arrival counter is recorded *before* its handler runs
//! (so `/metrics` sees itself), and its status/size/latency series
//! *after* — visible to every later request regardless of which worker
//! served this one.

use crate::http::{HttpError, Request};
use crate::index::QueryIndex;
use govhost_core::prelude::*;
use govhost_obs::export::{metrics_text, trace_level, TimeMode};
use govhost_obs::{Labels, Telemetry};
use std::sync::Mutex;
use std::time::Instant;

/// The route patterns the server exposes, used verbatim as the `route`
/// label on every HTTP metric (bounded cardinality by construction).
pub const ROUTES: [&str; 7] =
    ["/healthz", "/countries", "/country/{iso}", "/flows", "/providers", "/hhi", "/metrics"];

/// One response, ready to encode.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Canonical reason phrase.
    pub reason: &'static str,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Whether to advertise `Allow: GET` (405 responses).
    pub allow_get: bool,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` response with a precomputed JSON body.
    fn ok_json(body: &str) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            allow_get: false,
            body: body.as_bytes().to_vec(),
        }
    }

    /// The JSON error representation of a typed [`HttpError`].
    pub fn from_error(err: &HttpError) -> Response {
        let body = format!(
            "{{\"error\":{},\"reason\":\"{}\",\"detail\":\"{}\"}}",
            err.status(),
            err.reason(),
            govhost_obs::export::escape_json(err.detail())
        );
        Response {
            status: err.status(),
            reason: err.reason(),
            content_type: "application/json",
            allow_get: matches!(err, HttpError::MethodNotAllowed),
            body: body.into_bytes(),
        }
    }

    /// Serialize status line, headers, and body. The server never emits
    /// a `Date` header: responses must be byte-stable across runs.
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: govhost-serve\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        );
        if self.allow_get {
            head.push_str("Allow: GET\r\n");
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// The route label a path falls under (`"other"` for unknown paths,
/// bounding metric cardinality no matter what clients request).
pub fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/countries" => "/countries",
        "/flows" => "/flows",
        "/providers" => "/providers",
        "/hhi" => "/hhi",
        "/metrics" => "/metrics",
        p if p.starts_with("/country/") => "/country/{iso}",
        _ => "other",
    }
}

/// Everything a worker needs to answer requests: immutable index plus
/// the telemetry accounting.
#[derive(Debug)]
pub struct ServeState {
    index: QueryIndex,
    /// The dataset's build capture plus the index-build capture —
    /// the baseline `/metrics` starts from.
    base: Telemetry,
    /// Request-side telemetry, accumulated under a mutex (merge-based,
    /// so the capture is order-blind like the build-side shards).
    requests: Mutex<Telemetry>,
    mode: TimeMode,
}

impl ServeState {
    /// Build the index and state from a dataset, reading the export
    /// mode from `GOVHOST_TRACE` (verbose keeps real latency numbers in
    /// `/metrics`; the default stays deterministic).
    pub fn new(dataset: &GovDataset) -> ServeState {
        ServeState::with_mode(dataset, trace_level().time_mode())
    }

    /// Build with an explicit `/metrics` time mode (tests pin the
    /// deterministic one regardless of environment).
    pub fn with_mode(dataset: &GovDataset, mode: TimeMode) -> ServeState {
        let (index, build_capture) = govhost_obs::collect(|| {
            let _span = govhost_obs::span!("serve.index");
            let index = QueryIndex::build(dataset);
            govhost_obs::counter_add("serve.index.countries", &[], index.country_count() as u64);
            index
        });
        let mut base = dataset.telemetry.clone();
        base.merge(&build_capture);
        ServeState { index, base, requests: Mutex::new(Telemetry::new()), mode }
    }

    /// The `/metrics` time mode in effect.
    pub fn time_mode(&self) -> TimeMode {
        self.mode
    }

    /// The precomputed query index.
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }

    /// A merged snapshot of build-time and request-time telemetry.
    pub fn telemetry_snapshot(&self) -> Telemetry {
        let mut snap = self.base.clone();
        let requests = self.requests.lock().expect("telemetry lock");
        snap.merge(&requests);
        snap
    }

    /// Answer one parse outcome: route, handle, and account the
    /// exchange into the request telemetry.
    pub fn respond(&self, parsed: Result<&Request, &HttpError>) -> Response {
        let start = Instant::now();
        let route = match parsed {
            Ok(req) => route_label(req.path()),
            Err(_) => "error",
        };
        {
            let mut t = self.requests.lock().expect("telemetry lock");
            t.registry.add_counter("http.requests", Labels::new(&[("route", route)]), 1);
        }
        let response = match parsed {
            Err(err) => Response::from_error(err),
            Ok(req) if req.method != "GET" => {
                Response::from_error(&HttpError::MethodNotAllowed)
            }
            Ok(req) => self.handle(req.path()),
        };
        let latency_ns = start.elapsed().as_nanos() as u64;
        let class = match response.status {
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        let mut t = self.requests.lock().expect("telemetry lock");
        let labels = Labels::new(&[("route", route)]);
        t.registry.add_counter(
            "http.responses",
            Labels::new(&[("route", route), ("class", class)]),
            1,
        );
        t.registry.observe("http.response_bytes", labels.clone(), response.body.len() as u64);
        t.registry.observe("http.latency_ns", labels, latency_ns);
        response
    }

    /// Dispatch a `GET` on `path` against the index.
    fn handle(&self, path: &str) -> Response {
        match path {
            "/healthz" => Response::ok_json(self.index.healthz()),
            "/countries" => Response::ok_json(self.index.countries()),
            "/flows" => Response::ok_json(self.index.flows()),
            "/providers" => Response::ok_json(self.index.providers()),
            "/hhi" => Response::ok_json(self.index.hhi()),
            "/metrics" => {
                let text = metrics_text(&self.telemetry_snapshot(), self.mode);
                Response {
                    status: 200,
                    reason: "OK",
                    content_type: "text/plain; charset=utf-8",
                    allow_get: false,
                    body: text.into_bytes(),
                }
            }
            p => {
                if let Some(iso) = p.strip_prefix("/country/") {
                    let upper = iso.to_ascii_uppercase();
                    if let Some(body) = self.index.country(&upper) {
                        return Response::ok_json(body);
                    }
                }
                Response::from_error(&HttpError::NotFound)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Limits, RequestParser};
    use govhost_worldgen::prelude::*;

    fn state() -> ServeState {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        ServeState::with_mode(&dataset, TimeMode::Deterministic)
    }

    fn get(state: &ServeState, path: &str) -> Response {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        let mut parser = RequestParser::new(Limits::default());
        parser.push(raw.as_bytes());
        let req = parser.next_request().unwrap().unwrap();
        state.respond(Ok(&req))
    }

    #[test]
    fn every_route_answers_200() {
        let state = state();
        for path in ["/healthz", "/countries", "/flows", "/providers", "/hhi", "/metrics"] {
            assert_eq!(get(&state, path).status, 200, "{path}");
        }
    }

    #[test]
    fn country_lookup_is_case_insensitive_and_404s_unknowns() {
        let state = state();
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        let code = dataset.countries()[0];
        let lower = code.as_str().to_lowercase();
        assert_eq!(get(&state, &format!("/country/{code}")).status, 200);
        assert_eq!(get(&state, &format!("/country/{lower}")).status, 200);
        assert_eq!(get(&state, "/country/ZZ").status, 404);
        assert_eq!(get(&state, "/nope").status, 404);
    }

    #[test]
    fn non_get_methods_are_405_with_allow() {
        let state = state();
        let mut parser = RequestParser::new(Limits::default());
        parser.push(b"POST /hhi HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        let req = parser.next_request().unwrap().unwrap();
        let resp = state.respond(Ok(&req));
        assert_eq!(resp.status, 405);
        let encoded = String::from_utf8(resp.encode(false)).unwrap();
        assert!(encoded.contains("Allow: GET\r\n"));
        assert!(encoded.contains("Connection: close\r\n"));
    }

    #[test]
    fn requests_are_accounted_per_route_and_class() {
        let state = state();
        let _ = get(&state, "/hhi");
        let _ = get(&state, "/hhi");
        let _ = get(&state, "/nope");
        let snap = state.telemetry_snapshot();
        assert_eq!(
            snap.registry.counter_filtered("http.requests", &[("route", "/hhi")]),
            2
        );
        assert_eq!(
            snap.registry.counter_filtered("http.responses", &[("class", "4xx")]),
            1
        );
        assert_eq!(snap.registry.counter_total("http.latency_ns"), 0, "latency is a histogram");
    }

    #[test]
    fn metrics_route_sees_its_own_arrival() {
        let state = state();
        let body = String::from_utf8(get(&state, "/metrics").body).unwrap();
        assert!(
            body.contains("http_requests{route=\"/metrics\"} 1"),
            "arrival counter precedes rendering: {body}"
        );
        assert!(body.contains("# TYPE serve_index_countries counter"));
    }
}

//! Prerendered scenario routes: report cards and diffs as byte-pinned
//! slabs.
//!
//! A [`ScenarioIndex`] is built once from evaluated
//! [`ScenarioRun`]s — usually the CLI's `serve --scenario FILE` path —
//! and every `/scenario/{name}` and `/scenario/{name}/diff` answer is a
//! [`RouteSlab`] rendered here at build time: ETag included,
//! `304`-able, and byte-identical across workers and runs because the
//! JSON is a pure fold over the run's already-deterministic structures
//! (report cards in country order, insights in rank order, diff rows in
//! fixed label order).

use crate::index::{jf, js, RouteSlab};
use govhost_scenario::{report_cards, DiffReport, MetricRow, ScenarioRun};
use std::collections::BTreeMap;

/// One scenario's two prerendered answers.
#[derive(Debug)]
struct ScenarioSlabs {
    /// `/scenario/{name}`: report cards plus ranked insights.
    report: RouteSlab,
    /// `/scenario/{name}/diff`: baseline vs shocked, row by row.
    diff: RouteSlab,
}

/// Every declared scenario, prerendered for serving.
#[derive(Debug, Default)]
pub struct ScenarioIndex {
    entries: BTreeMap<String, ScenarioSlabs>,
}

impl ScenarioIndex {
    /// Render slabs for every run, keyed by scenario name.
    pub fn build(runs: &[ScenarioRun]) -> ScenarioIndex {
        let mut entries = BTreeMap::new();
        for run in runs {
            entries.insert(
                run.name.clone(),
                ScenarioSlabs {
                    report: RouteSlab::json(render_report(run)),
                    diff: RouteSlab::json(render_diff(&run.name, &run.diff())),
                },
            );
        }
        ScenarioIndex { entries }
    }

    /// How many scenarios are served.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no scenarios are served.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scenario names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    pub(crate) fn report_slab(&self, name: &str) -> Option<&RouteSlab> {
        self.entries.get(name).map(|s| &s.report)
    }

    pub(crate) fn diff_slab(&self, name: &str) -> Option<&RouteSlab> {
        self.entries.get(name).map(|s| &s.diff)
    }
}

fn render_report(run: &ScenarioRun) -> String {
    let cards: Vec<String> = report_cards(run)
        .iter()
        .map(|c| {
            let offshore = c.offshore_percent.map_or_else(|| "null".to_string(), jf);
            format!(
                "{{\"country\":{},\"overall\":{},\"concentration\":{},\"exposure\":{},\
                 \"resilience\":{},\"hhi_bytes\":{},\"offshore_percent\":{},\
                 \"dark_percent\":{},\"ns_only_percent\":{}}}",
                js(c.country.as_str()),
                js(&c.overall.to_string()),
                js(&c.concentration.to_string()),
                js(&c.exposure.to_string()),
                js(&c.resilience.to_string()),
                jf(c.hhi_bytes),
                offshore,
                jf(c.dark_percent),
                jf(c.ns_only_percent),
            )
        })
        .collect();
    let insights: Vec<String> =
        run.insights().iter().map(|i| js(&i.text)).collect();
    let dirty: Vec<String> = run.dirty.iter().map(|c| js(c.as_str())).collect();
    format!(
        "{{\"scenario\":{},\"events\":{},\"dirty\":[{}],\"dark_percent\":{},\
         \"cards\":[{}],\"insights\":[{}]}}",
        js(&run.name),
        run.events.len(),
        dirty.join(","),
        jf(run.shocked_metrics.dark_percent),
        cards.join(","),
        insights.join(","),
    )
}

fn render_row(r: &MetricRow) -> String {
    format!(
        "{{\"label\":{},\"a\":{},\"b\":{},\"delta\":{},\"diff_pct\":{},\
         \"winner\":{},\"lower_is_better\":{}}}",
        js(&r.label),
        jf(r.a),
        jf(r.b),
        jf(r.delta),
        jf(r.diff_pct),
        js(r.winner.label()),
        r.lower_is_better,
    )
}

fn render_diff(name: &str, diff: &DiffReport) -> String {
    let global: Vec<String> = diff.global.iter().map(render_row).collect();
    let countries: Vec<String> = diff
        .countries
        .iter()
        .map(|c| {
            let rows: Vec<String> = c.rows.iter().map(render_row).collect();
            format!(
                "{{\"country\":{},\"rows\":[{}]}}",
                js(c.country.as_str()),
                rows.join(",")
            )
        })
        .collect();
    format!(
        "{{\"scenario\":{},\"global\":[{}],\"countries\":[{}]}}",
        js(name),
        global.join(","),
        countries.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_core::prelude::*;
    use govhost_scenario::{dsl, run_file};
    use govhost_worldgen::GenParams;

    fn runs() -> Vec<ScenarioRun> {
        let file = dsl::parse("scenario quake\noutage provider AS13335\n").unwrap();
        run_file(&GenParams::tiny(), &file, &BuildOptions::default()).unwrap()
    }

    #[test]
    fn slabs_are_valid_json_shaped_and_byte_stable() {
        let runs = runs();
        let a = ScenarioIndex::build(&runs);
        let b = ScenarioIndex::build(&runs);
        assert_eq!(a.len(), 1);
        assert_eq!(a.names().collect::<Vec<_>>(), ["quake"]);
        for name in a.names() {
            let ra = a.report_slab(name).unwrap();
            let rb = b.report_slab(name).unwrap();
            assert_eq!(ra.body_str(), rb.body_str(), "report bytes pinned");
            assert_eq!(
                a.diff_slab(name).unwrap().body_str(),
                b.diff_slab(name).unwrap().body_str(),
                "diff bytes pinned"
            );
            assert!(ra.body_str().starts_with("{\"scenario\":\"quake\""), "{}", ra.body_str());
            assert!(ra.body_str().contains("\"cards\":["));
            assert!(a.diff_slab(name).unwrap().body_str().contains("\"global\":["));
        }
        assert!(a.report_slab("nope").is_none());
    }
}

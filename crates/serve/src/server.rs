//! The transport layer: a connection trait, the per-connection serve
//! loop, a fixed worker pool, and the TCP acceptor.
//!
//! Transport is abstracted behind [`Connection`] (`Read + Write +
//! Send`), so the full parser → router → encoder stack runs identically
//! over a real [`std::net::TcpStream`] and over the in-process
//! [`MemConn`] — which is how the conformance, determinism, and load
//! tests drive the server without sockets.
//!
//! The pool follows the `govhost-par` conventions: a fixed worker
//! count resolved once ([`crate::resolve_serve_threads`]), named
//! threads, and no work stealing — workers pull connections off a
//! shared channel. Shutdown is graceful: the drain flag stops
//! keep-alive loops after their in-flight request, the channel closes,
//! and every queued connection is still served before workers exit.

use crate::http::{HttpError, Limits, RequestParser};
use crate::router::ServeState;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A bidirectional byte stream the server can answer on. Blanket-implemented
/// for every `Read + Write + Send` type ([`TcpStream`], [`MemConn`], ...).
pub trait Connection: Read + Write + Send {}

impl<T: Read + Write + Send> Connection for T {}

/// Serve one connection to completion: parse requests (pipelining
/// included), answer each through `state`, and honour keep-alive until
/// the client closes, an error closes, or `draining` asks the loop to
/// wind down after the in-flight request.
///
/// A clean EOF between requests returns `Ok`; an EOF or read timeout
/// mid-request answers `400` first. Write failures surface as the
/// client disconnecting — there is nobody left to answer.
pub fn serve_connection<C: Connection + ?Sized>(
    state: &ServeState,
    conn: &mut C,
    limits: &Limits,
    draining: impl Fn() -> bool,
) -> std::io::Result<()> {
    let mut parser = RequestParser::new(limits.clone());
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete buffered request before reading more.
        loop {
            match parser.next_request() {
                Ok(Some(request)) => {
                    let response = state.respond(Ok(&request));
                    let keep = request.keep_alive() && !draining();
                    conn.write_all(&response.encode(keep))?;
                    if !keep {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    let response = state.respond(Err(&error));
                    conn.write_all(&response.encode(false))?;
                    return Ok(());
                }
            }
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                if parser.has_partial() {
                    let error = HttpError::BadRequest("truncated request");
                    let response = state.respond(Err(&error));
                    conn.write_all(&response.encode(false))?;
                }
                return Ok(());
            }
            Ok(n) => parser.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if parser.has_partial() {
                    let error = HttpError::BadRequest("read timeout");
                    let response = state.respond(Err(&error));
                    conn.write_all(&response.encode(false))?;
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
}

type BoxConn = Box<dyn Connection>;

/// A fixed pool of worker threads answering connections off a shared
/// queue.
#[derive(Debug)]
pub struct Pool {
    tx: Option<Sender<BoxConn>>,
    workers: Vec<JoinHandle<()>>,
    draining: Arc<AtomicBool>,
}

impl Pool {
    /// Start `threads` workers (at least one) serving `state`.
    pub fn start(state: Arc<ServeState>, threads: usize, limits: Limits) -> Pool {
        let threads = threads.max(1);
        let (tx, rx) = channel::<BoxConn>();
        let rx: Arc<Mutex<Receiver<BoxConn>>> = Arc::new(Mutex::new(rx));
        let draining = Arc::new(AtomicBool::new(false));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                let draining = Arc::clone(&draining);
                let limits = limits.clone();
                std::thread::Builder::new()
                    .name(format!("govhost-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the dequeue; serving
                        // runs in parallel across workers.
                        let next = rx.lock().expect("queue lock").recv();
                        let Ok(mut conn) = next else { return };
                        let _ = serve_connection(&state, &mut *conn, &limits, || {
                            draining.load(Ordering::SeqCst)
                        });
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        Pool { tx: Some(tx), workers, draining }
    }

    /// Queue a connection; `false` once the pool is shutting down.
    pub fn submit(&self, conn: BoxConn) -> bool {
        match &self.tx {
            Some(tx) => tx.send(conn).is_ok(),
            None => false,
        }
    }

    /// Flip the drain flag: keep-alive loops close after their current
    /// request. Already-queued connections are still served.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Drain and join every worker (also what `Drop` does).
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.begin_drain();
        self.tx = None; // close the channel: workers exit once the queue is empty
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads ([`crate::resolve_serve_threads`] by default).
    pub threads: usize,
    /// Per-request parser limits.
    pub limits: Limits,
    /// Socket read timeout: an idle or stalled client cannot pin a
    /// worker forever.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: crate::resolve_serve_threads(),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A TCP acceptor feeding the worker pool.
#[derive(Debug)]
pub struct Server {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<Pool>,
}

impl Server {
    /// Bind `addr` and start accepting. The returned server runs in the
    /// background until [`Server::shutdown`] (or drop).
    pub fn bind<A: ToSocketAddrs>(
        state: Arc<ServeState>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let pool = Pool::start(state, config.threads, config.limits);
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let submit_tx = pool.tx.clone().expect("fresh pool has a sender");
            let read_timeout = config.read_timeout;
            std::thread::Builder::new()
                .name("govhost-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        let _ = stream.set_nodelay(true);
                        if submit_tx.send(Box::new(stream)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn acceptor")
        };
        Ok(Server { local, stop, acceptor: Some(acceptor), pool: Some(pool) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Graceful shutdown: stop accepting, drain in-flight and queued
    /// connections, join every thread (also what `Drop` does).
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(pool) = &self.pool {
            pool.begin_drain();
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.pool = None; // Pool::drop drains the queue and joins workers
    }
}

/// An in-process [`Connection`]: a scripted input buffer plus a
/// captured output buffer, with an optional completion channel for
/// driving the real [`Pool`] without sockets.
#[derive(Debug)]
pub struct MemConn {
    input: std::io::Cursor<Vec<u8>>,
    output: Vec<u8>,
    done: Option<Sender<Vec<u8>>>,
}

impl MemConn {
    /// A connection that will replay `input` and record the response
    /// bytes (read them back with [`MemConn::output`]).
    pub fn new(input: impl Into<Vec<u8>>) -> MemConn {
        MemConn { input: std::io::Cursor::new(input.into()), output: Vec::new(), done: None }
    }

    /// Like [`MemConn::new`], plus a receiver that yields the response
    /// bytes when the connection is dropped — i.e. when a pool worker
    /// finishes serving it.
    pub fn scripted(input: impl Into<Vec<u8>>) -> (MemConn, Receiver<Vec<u8>>) {
        let (tx, rx) = channel();
        let mut conn = MemConn::new(input);
        conn.done = Some(tx);
        (conn, rx)
    }

    /// The bytes written by the server so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

impl Read for MemConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for MemConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for MemConn {
    fn drop(&mut self) {
        if let Some(tx) = self.done.take() {
            let _ = tx.send(std::mem::take(&mut self.output));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_core::prelude::*;
    use govhost_obs::TimeMode;
    use govhost_worldgen::prelude::*;

    fn state() -> Arc<ServeState> {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic))
    }

    fn roundtrip(state: &ServeState, input: &[u8]) -> String {
        let mut conn = MemConn::new(input);
        serve_connection(state, &mut conn, &Limits::default(), || false).unwrap();
        String::from_utf8_lossy(conn.output()).into_owned()
    }

    #[test]
    fn keep_alive_pipelining_answers_in_order() {
        let state = state();
        let out = roundtrip(
            &state,
            b"GET /healthz HTTP/1.1\r\n\r\nGET /hhi HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 2);
        let first = out.find("Connection: keep-alive").unwrap();
        let second = out.find("Connection: close").unwrap();
        assert!(first < second);
    }

    #[test]
    fn truncated_request_is_answered_400_on_eof() {
        let state = state();
        let out = roundtrip(&state, b"GET /hhi HTTP/1.1\r\nHost");
        assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
        assert!(out.contains("truncated request"));
    }

    #[test]
    fn pool_serves_queued_connections_through_shutdown() {
        let pool = Pool::start(state(), 2, Limits::default());
        let receivers: Vec<_> = (0..8)
            .map(|_| {
                let (conn, rx) = MemConn::scripted(&b"GET /countries HTTP/1.1\r\n\r\n"[..]);
                assert!(pool.submit(Box::new(conn)));
                rx
            })
            .collect();
        pool.shutdown(); // drains the queue before joining
        for rx in receivers {
            let out = rx.recv().expect("connection was served");
            assert!(out.starts_with(b"HTTP/1.1 200 OK"));
        }
    }

    #[test]
    fn draining_pool_closes_keep_alive_after_inflight_request() {
        let pool = Pool::start(state(), 1, Limits::default());
        pool.begin_drain();
        let (conn, rx) = MemConn::scripted(&b"GET /healthz HTTP/1.1\r\n\r\n"[..]);
        assert!(pool.submit(Box::new(conn)));
        let out = String::from_utf8(rx.recv().unwrap()).unwrap();
        assert!(out.contains("Connection: close"), "drain closes keep-alive: {out}");
        pool.shutdown();
    }
}

//! The transport layer: a connection trait, the blocking per-connection
//! serve loop, the event-loop worker pool, and the TCP acceptor.
//!
//! Transport is abstracted behind [`Connection`] (`Read + Write +
//! Send`), so the full parser → router → encoder stack runs identically
//! over a real [`std::net::TcpStream`] and over the in-process
//! [`MemConn`] — which is how the conformance, determinism, and load
//! tests drive the server without sockets.
//!
//! The pool runs one [`EventLoop`] per worker thread: accepted sockets
//! are switched to non-blocking mode and distributed round-robin, each
//! worker multiplexes its share with `poll(2)` readiness (a blocked or
//! slow connection never pins the thread), and a per-worker wake pipe
//! lets the acceptor interrupt a sleeping poll when new work arrives.
//! Admission control happens before the queue: past
//! [`PoolConfig::max_conns`] in-flight connections the acceptor sheds
//! with a canned `503 Retry-After` instead of queueing unboundedly —
//! written while the socket is still in blocking mode (bounded by a
//! short write timeout), so the 503 actually reaches the peer under
//! the very overload that triggers it.
//!
//! Shutdown is graceful: the drain flag stops keep-alive after the
//! in-flight request, queued connections are still served, quiet
//! keep-alive peers are closed immediately instead of waiting out
//! their idle timeout, and every thread is joined.

use crate::event::{ConnPolicy, EventLoop, PollReadiness, SysClock};
use crate::http::{HttpError, Limits, RequestParser};
use crate::router::{Response, ServeState};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A bidirectional byte stream the server can answer on. Blanket-implemented
/// for every `Read + Write + Send` type ([`TcpStream`], [`MemConn`], ...).
pub trait Connection: Read + Write + Send {}

impl<T: Read + Write + Send> Connection for T {}

/// How long an event-loop worker sleeps in `poll(2)` with no readiness:
/// the fallback intake latency when the wake pipe is unavailable.
const WORKER_TICK: Duration = Duration::from_millis(25);

/// Write-timeout bound on the acceptor's blocking shed write: a shed
/// peer that refuses to read its `503` cannot hold the accept loop for
/// longer than this.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(100);

/// Serve one connection to completion on the calling thread: parse
/// requests (pipelining included), answer each through `state`, and
/// honour keep-alive until the client closes, an error closes, or
/// `draining` asks the loop to wind down after the in-flight request.
///
/// This is the blocking little sibling of the [`EventLoop`]: same
/// parser, same router, same response bytes — handy for doctests and
/// one-off in-process calls. [`serve_connection_with`] exposes the
/// full [`ConnPolicy`] (request caps); this wrapper applies the
/// default policy with the given parser `limits`.
///
/// A clean EOF between requests returns `Ok`; an EOF or read timeout
/// mid-request answers `400` first. Write failures surface as the
/// client disconnecting — there is nobody left to answer.
pub fn serve_connection<C: Connection + ?Sized>(
    state: &ServeState,
    conn: &mut C,
    limits: &Limits,
    draining: impl Fn() -> bool,
) -> std::io::Result<()> {
    let policy = ConnPolicy { limits: limits.clone(), ..ConnPolicy::default() };
    serve_connection_with(state, conn, &policy, draining)
}

/// [`serve_connection`] with the full per-connection policy: parser
/// limits plus [`ConnPolicy::max_requests_per_conn`] (the final
/// response on a capped pipeline carries `Connection: close`). The
/// idle timeout and backpressure bound of the policy are readiness
/// concerns and only apply inside the [`EventLoop`].
pub fn serve_connection_with<C: Connection + ?Sized>(
    state: &ServeState,
    conn: &mut C,
    policy: &ConnPolicy,
    draining: impl Fn() -> bool,
) -> std::io::Result<()> {
    let mut parser = RequestParser::new(policy.limits.clone());
    let mut chunk = [0u8; 4096];
    let mut served = 0usize;
    loop {
        // Drain every complete buffered request before reading more.
        loop {
            match parser.next_request() {
                Ok(Some(request)) => {
                    served += 1;
                    let response = state.respond(Ok(&request));
                    let keep = request.keep_alive()
                        && !draining()
                        && served < policy.max_requests_per_conn;
                    for seg in response.segments(keep) {
                        conn.write_all(seg.as_slice())?;
                    }
                    if !keep {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    let response = state.respond(Err(&error));
                    for seg in response.segments(false) {
                        conn.write_all(seg.as_slice())?;
                    }
                    return Ok(());
                }
            }
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                if parser.has_partial() {
                    let error = HttpError::BadRequest("truncated request");
                    let response = state.respond(Err(&error));
                    for seg in response.segments(false) {
                        conn.write_all(seg.as_slice())?;
                    }
                }
                return Ok(());
            }
            Ok(n) => parser.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if parser.has_partial() {
                    let error = HttpError::BadRequest("read timeout");
                    let response = state.respond(Err(&error));
                    for seg in response.segments(false) {
                        conn.write_all(seg.as_slice())?;
                    }
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
}

type BoxConn = Box<dyn Connection>;
type Job = (BoxConn, Option<i32>);

/// Configuration for [`Pool::start_with`].
#[derive(Debug, Clone, Default)]
pub struct PoolConfig {
    /// Per-connection serving policy (limits, keep-alive caps,
    /// idle timeout, backpressure bound).
    pub policy: ConnPolicy,
    /// Most in-flight connections across all workers; submissions past
    /// this are shed with `503 Retry-After` instead of queued.
    pub max_conns: usize,
}

impl PoolConfig {
    fn normalized(mut self) -> PoolConfig {
        if self.max_conns == 0 {
            self.max_conns = 1024;
        }
        self
    }
}

/// A fixed set of event-loop workers, each multiplexing its share of
/// connections with readiness polling.
pub struct Pool {
    state: Arc<ServeState>,
    senders: Option<Vec<Sender<Job>>>,
    wakers: Vec<Option<std::io::PipeWriter>>,
    workers: Vec<JoinHandle<()>>,
    next: AtomicUsize,
    active: Arc<AtomicUsize>,
    max_conns: usize,
    draining: Arc<AtomicBool>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .field("active", &self.active.load(Ordering::SeqCst))
            .field("max_conns", &self.max_conns)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Start `threads` workers (at least one) serving `state` with the
    /// default [`PoolConfig`] and the given parser `limits`.
    pub fn start(state: Arc<ServeState>, threads: usize, limits: Limits) -> Pool {
        let policy = ConnPolicy { limits, ..ConnPolicy::default() };
        Pool::start_with(state, threads, PoolConfig { policy, ..PoolConfig::default() })
    }

    /// Start `threads` event-loop workers (at least one) serving
    /// `state` under `config`.
    pub fn start_with(state: Arc<ServeState>, threads: usize, config: PoolConfig) -> Pool {
        let config = config.normalized();
        let threads = threads.max(1);
        let draining = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let mut senders = Vec::with_capacity(threads);
        let mut wakers = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = channel::<Job>();
            let (wake_reader, wake_writer) = match std::io::pipe() {
                Ok((r, w)) => (Some(r), Some(w)),
                Err(_) => (None, None), // WORKER_TICK bounds intake latency
            };
            senders.push(tx);
            wakers.push(wake_writer);
            let state = Arc::clone(&state);
            let draining = Arc::clone(&draining);
            let active = Arc::clone(&active);
            let policy = config.policy.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("govhost-serve-{i}"))
                    .spawn(move || worker_loop(state, rx, wake_reader, policy, draining, active))
                    .expect("spawn serve worker"),
            );
        }
        Pool {
            state,
            senders: Some(senders),
            wakers,
            workers,
            next: AtomicUsize::new(0),
            active,
            max_conns: config.max_conns,
            draining,
        }
    }

    /// Queue a connection (no descriptor: treated as always ready);
    /// `false` once the pool is shutting down.
    pub fn submit(&self, conn: BoxConn) -> bool {
        self.submit_with_fd(conn, None)
    }

    /// Whether a new submission would be shed right now.
    pub fn is_saturated(&self) -> bool {
        self.active.load(Ordering::SeqCst) >= self.max_conns
    }

    /// Write the canned, accounted `503 Retry-After` shed response to a
    /// connection that will not be served. Best effort — the peer may
    /// already be gone — but a transiently full non-blocking socket is
    /// retried briefly instead of truncating the 503 mid-header.
    pub fn shed(&self, conn: &mut dyn Write) {
        write_shed(conn, &self.state.shed());
    }

    /// Queue a connection together with its raw descriptor so the
    /// worker's readiness loop can poll it. Past
    /// [`PoolConfig::max_conns`] in-flight connections the submission
    /// is shed — answered directly with the canned `503 Retry-After`
    /// and counted in `/metrics` — which still returns `true`: the
    /// connection was handled, just not served. (The acceptor sheds
    /// before switching sockets non-blocking; this in-submit path is
    /// the backstop for the race between that check and the queue.)
    pub fn submit_with_fd(&self, mut conn: BoxConn, fd: Option<i32>) -> bool {
        let Some(senders) = &self.senders else { return false };
        if self.is_saturated() {
            self.shed(&mut *conn);
            return true;
        }
        self.active.fetch_add(1, Ordering::SeqCst);
        let slot = self.next.fetch_add(1, Ordering::SeqCst) % senders.len();
        if senders[slot].send((conn, fd)).is_err() {
            self.active.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        if let Some(mut writer) = self.wakers[slot].as_ref() {
            let _ = writer.write(&[1u8]); // `impl Write for &PipeWriter`
        }
        true
    }

    /// Connections currently queued or being served.
    pub fn active_conns(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Flip the drain flag: keep-alive loops close after their current
    /// request. Already-queued connections are still served.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Drain and join every worker (also what `Drop` does).
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.begin_drain();
        self.senders = None; // close the queues: workers exit once drained
        for mut writer in self.wakers.iter().flatten() {
            let _ = writer.write(&[1u8]); // interrupt sleeping polls
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Write every segment of a shed `response`, tolerating partial writes
/// and retrying a transiently full socket a handful of times (1 ms
/// apart) — under overload, a bare connection close where the client
/// expected `503 Retry-After` would defeat the point of shedding. Any
/// persistent error gives up: the peer is gone or not reading.
fn write_shed(conn: &mut dyn Write, response: &Response) {
    const WOULD_BLOCK_RETRIES: u32 = 20;
    let mut retries = 0u32;
    for seg in response.segments(false) {
        let mut buf = seg.as_slice();
        while !buf.is_empty() {
            match conn.write(buf) {
                Ok(0) => return,
                Ok(n) => buf = &buf[n..],
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        && retries < WOULD_BLOCK_RETRIES =>
                {
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => return,
            }
        }
    }
    let _ = conn.flush();
}

/// One event-loop worker: adopt submitted connections, spin
/// [`EventLoop::turn`]s, keep the shared in-flight count honest.
fn worker_loop(
    state: Arc<ServeState>,
    rx: Receiver<Job>,
    wake_reader: Option<std::io::PipeReader>,
    policy: ConnPolicy,
    draining: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
) {
    let mut el = EventLoop::new(
        state,
        Box::new(PollReadiness::new()),
        Arc::new(SysClock::new()),
        policy,
        Arc::clone(&draining),
    );
    let mut wake_reader = wake_reader;
    #[cfg(unix)]
    if let Some(reader) = &wake_reader {
        use std::os::fd::AsRawFd;
        el.set_wake_fd(Some(reader.as_raw_fd()));
    }
    #[cfg(not(unix))]
    {
        wake_reader = None; // no raw fd to poll; rely on WORKER_TICK
    }
    loop {
        if el.is_empty() {
            // Nothing to poll: block on the queue until work or close.
            match rx.recv() {
                Ok((conn, fd)) => el.register(conn, fd),
                Err(_) => return,
            }
        }
        while let Ok((conn, fd)) = rx.try_recv() {
            el.register(conn, fd);
        }
        let before = el.len();
        match el.turn(Some(WORKER_TICK)) {
            Ok(report) => {
                if report.woken {
                    if let Some(reader) = &mut wake_reader {
                        let mut sink = [0u8; 64];
                        let _ = reader.read(&mut sink);
                    }
                }
            }
            Err(_) => std::thread::sleep(WORKER_TICK), // poll failure: back off
        }
        if draining.load(Ordering::SeqCst) {
            el.close_idle_now();
        }
        let after = el.len();
        if before > after {
            active.fetch_sub(before - after, Ordering::SeqCst);
        }
    }
}

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads ([`crate::resolve_serve_threads`] by default).
    pub threads: usize,
    /// Per-request parser limits.
    pub limits: Limits,
    /// Most requests served on one keep-alive connection.
    pub max_requests_per_conn: usize,
    /// Idle-connection eviction deadline.
    pub idle_timeout: Duration,
    /// Most in-flight connections before the acceptor sheds with
    /// `503 Retry-After`.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let policy = ConnPolicy::default();
        ServerConfig {
            threads: crate::resolve_serve_threads(),
            limits: policy.limits,
            max_requests_per_conn: policy.max_requests_per_conn,
            idle_timeout: policy.idle_timeout,
            max_conns: 1024,
        }
    }
}

/// A TCP acceptor feeding the event-loop worker pool.
#[derive(Debug)]
pub struct Server {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<Arc<Pool>>,
}

impl Server {
    /// Bind `addr` and start accepting. The returned server runs in the
    /// background until [`Server::shutdown`] (or drop).
    pub fn bind<A: ToSocketAddrs>(
        state: Arc<ServeState>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let policy = ConnPolicy {
            limits: config.limits,
            max_requests_per_conn: config.max_requests_per_conn.max(1),
            idle_timeout: config.idle_timeout,
            ..ConnPolicy::default()
        };
        let pool = Arc::new(Pool::start_with(
            state,
            config.threads,
            PoolConfig { policy, max_conns: config.max_conns },
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("govhost-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(mut stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        if pool.is_saturated() {
                            // Shed while the socket still blocks, so
                            // the 503 is not truncated by WouldBlock on
                            // a full buffer — the exact condition
                            // shedding exists for. The write timeout
                            // bounds a peer that never reads.
                            let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
                            pool.shed(&mut stream);
                            continue;
                        }
                        // The readiness loop owns scheduling; the
                        // socket itself must never block a worker.
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        #[cfg(unix)]
                        let fd = {
                            use std::os::fd::AsRawFd;
                            let fd = stream.as_raw_fd();
                            crate::event::enable_tcp_keepalive(fd);
                            Some(fd)
                        };
                        #[cfg(not(unix))]
                        let fd = None;
                        if !pool.submit_with_fd(Box::new(stream), fd) {
                            break;
                        }
                    }
                })
                .expect("spawn acceptor")
        };
        Ok(Server { local, stop, acceptor: Some(acceptor), pool: Some(pool) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Graceful shutdown: stop accepting, drain in-flight and queued
    /// connections, join every thread (also what `Drop` does).
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(pool) = &self.pool {
            pool.begin_drain();
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.pool = None; // Pool::drop drains the queues and joins workers
    }
}

/// An in-process [`Connection`]: a scripted input buffer plus a
/// captured output buffer, with an optional completion channel for
/// driving the real [`Pool`] without sockets.
#[derive(Debug)]
pub struct MemConn {
    input: std::io::Cursor<Vec<u8>>,
    output: Vec<u8>,
    done: Option<Sender<Vec<u8>>>,
}

impl MemConn {
    /// A connection that will replay `input` and record the response
    /// bytes (read them back with [`MemConn::output`]).
    pub fn new(input: impl Into<Vec<u8>>) -> MemConn {
        MemConn { input: std::io::Cursor::new(input.into()), output: Vec::new(), done: None }
    }

    /// Like [`MemConn::new`], plus a receiver that yields the response
    /// bytes when the connection is dropped — i.e. when a pool worker
    /// finishes serving it.
    pub fn scripted(input: impl Into<Vec<u8>>) -> (MemConn, Receiver<Vec<u8>>) {
        let (tx, rx) = channel();
        let mut conn = MemConn::new(input);
        conn.done = Some(tx);
        (conn, rx)
    }

    /// The bytes written by the server so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

impl Read for MemConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for MemConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for MemConn {
    fn drop(&mut self) {
        if let Some(tx) = self.done.take() {
            let _ = tx.send(std::mem::take(&mut self.output));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_core::prelude::*;
    use govhost_obs::TimeMode;
    use govhost_worldgen::prelude::*;

    fn state() -> Arc<ServeState> {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic))
    }

    fn roundtrip(state: &ServeState, input: &[u8]) -> String {
        let mut conn = MemConn::new(input);
        serve_connection(state, &mut conn, &Limits::default(), || false).unwrap();
        String::from_utf8_lossy(conn.output()).into_owned()
    }

    #[test]
    fn keep_alive_pipelining_answers_in_order() {
        let state = state();
        let out = roundtrip(
            &state,
            b"GET /healthz HTTP/1.1\r\n\r\nGET /hhi HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 2);
        let first = out.find("Connection: keep-alive").unwrap();
        let second = out.find("Connection: close").unwrap();
        assert!(first < second);
    }

    #[test]
    fn truncated_request_is_answered_400_on_eof() {
        let state = state();
        let out = roundtrip(&state, b"GET /hhi HTTP/1.1\r\nHost");
        assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
        assert!(out.contains("truncated request"));
    }

    #[test]
    fn blocking_loop_honours_max_requests_per_conn() {
        let state = state();
        let policy = ConnPolicy { max_requests_per_conn: 1, ..ConnPolicy::default() };
        let mut conn = MemConn::new(&b"GET /healthz HTTP/1.1\r\n\r\nGET /hhi HTTP/1.1\r\n\r\n"[..]);
        serve_connection_with(&state, &mut conn, &policy, || false).unwrap();
        let out = String::from_utf8_lossy(conn.output()).into_owned();
        assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 1, "{out}");
        assert!(out.contains("Connection: close"));
    }

    #[test]
    fn pool_serves_queued_connections_through_shutdown() {
        let pool = Pool::start(state(), 2, Limits::default());
        let receivers: Vec<_> = (0..8)
            .map(|_| {
                let (conn, rx) = MemConn::scripted(&b"GET /countries HTTP/1.1\r\n\r\n"[..]);
                assert!(pool.submit(Box::new(conn)));
                rx
            })
            .collect();
        pool.shutdown(); // drains the queue before joining
        for rx in receivers {
            let out = rx.recv().expect("connection was served");
            assert!(out.starts_with(b"HTTP/1.1 200 OK"));
        }
    }

    #[test]
    fn draining_pool_closes_keep_alive_after_inflight_request() {
        let pool = Pool::start(state(), 1, Limits::default());
        pool.begin_drain();
        let (conn, rx) = MemConn::scripted(&b"GET /healthz HTTP/1.1\r\n\r\n"[..]);
        assert!(pool.submit(Box::new(conn)));
        let out = String::from_utf8(rx.recv().unwrap()).unwrap();
        assert!(out.contains("Connection: close"), "drain closes keep-alive: {out}");
        pool.shutdown();
    }

    #[test]
    fn saturated_pool_sheds_with_503_retry_after() {
        let state = state();
        let config = PoolConfig { max_conns: 1, ..PoolConfig::default() };
        let pool = Pool::start_with(Arc::clone(&state), 1, config);
        // Artificially saturate: claim the only slot without a worker
        // ever seeing it, then submit a real connection.
        pool.active.fetch_add(1, Ordering::SeqCst);
        let (conn, rx) = MemConn::scripted(&b"GET /healthz HTTP/1.1\r\n\r\n"[..]);
        assert!(pool.submit(Box::new(conn)), "shed connections are handled");
        let out = String::from_utf8(rx.recv().unwrap()).unwrap();
        assert!(out.starts_with("HTTP/1.1 503 Service Unavailable"), "{out}");
        assert!(out.contains("Retry-After: 1"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
        assert_eq!(state.shed_count(), 1);
        pool.active.fetch_sub(1, Ordering::SeqCst);
        pool.shutdown();
    }

    #[test]
    fn pool_tracks_active_connections_back_to_zero() {
        let pool = Pool::start(state(), 2, Limits::default());
        let receivers: Vec<_> = (0..4)
            .map(|_| {
                let (conn, rx) = MemConn::scripted(&b"GET /hhi HTTP/1.1\r\n\r\n"[..]);
                assert!(pool.submit(Box::new(conn)));
                rx
            })
            .collect();
        for rx in receivers {
            let _ = rx.recv().expect("served");
        }
        // Workers decrement after reaping; give the loops a beat.
        for _ in 0..200 {
            if pool.active_conns() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.active_conns(), 0);
        pool.shutdown();
    }
}

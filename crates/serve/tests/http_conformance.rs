//! HTTP/1.1 conformance suite for the serving stack, run entirely
//! in-process: every case drives the real parser → router → encoder
//! path through [`serve_connection`] over a [`MemConn`], so the suite
//! needs no sockets and pins the exact wire behaviour — which malformed
//! inputs map to which status codes, when connections close, and how
//! pipelining behaves.

use govhost_core::prelude::*;
use govhost_obs::TimeMode;
use govhost_serve::{
    serve_connection, serve_connection_with, ConnPolicy, EventLoop, FakeClock, FakeReadiness,
    Limits, MemConn, Pool, PoolConfig, ServeState,
};
use govhost_worldgen::prelude::*;
use std::io::{Read, Write};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// One shared state for the whole suite: the index is immutable and the
/// request telemetry only accumulates, so cases cannot interfere.
fn state() -> &'static ServeState {
    static STATE: OnceLock<ServeState> = OnceLock::new();
    STATE.get_or_init(|| {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        ServeState::with_mode(&dataset, TimeMode::Deterministic)
    })
}

/// Shared `Arc` state for the cases that drive an [`EventLoop`] or
/// [`Pool`] directly.
fn astate() -> Arc<ServeState> {
    static STATE: OnceLock<Arc<ServeState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(|| {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic))
    }))
}

/// A transport that hands the server at most `chunk` input bytes per
/// read — the wire arriving in arbitrary small pieces.
struct Trickle {
    input: Vec<u8>,
    pos: usize,
    chunk: usize,
    output: Vec<u8>,
}

impl Trickle {
    fn new(input: &[u8], chunk: usize) -> Trickle {
        Trickle { input: input.to_vec(), pos: 0, chunk: chunk.max(1), output: Vec::new() }
    }
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.input.len() - self.pos);
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for Trickle {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The `ETag:` value of the first response in `out`.
fn first_etag(out: &str) -> String {
    out.lines()
        .find_map(|l| l.strip_prefix("ETag: "))
        .expect("response carries an ETag")
        .to_string()
}

fn roundtrip_with(input: &[u8], limits: &Limits) -> String {
    let mut conn = MemConn::new(input);
    serve_connection(state(), &mut conn, limits, || false).expect("MemConn never errors");
    String::from_utf8_lossy(conn.output()).into_owned()
}

fn roundtrip(input: &[u8]) -> String {
    roundtrip_with(input, &Limits::default())
}

/// Responses are counted by the `Server:` header — status lines never
/// appear inside the JSON bodies, but this is unambiguous either way.
fn response_count(out: &str) -> usize {
    out.matches("\r\nServer: govhost-serve\r\n").count()
}

#[test]
fn malformed_request_lines_are_400_and_close() {
    for bad in [
        &b"GET /\r\n\r\n"[..],                  // missing version
        b"GET / HTTP/2.0\r\n\r\n",              // unsupported version
        b"GET / HTTP/1.1 extra\r\n\r\n",        // four parts
        b"GET  / HTTP/1.1\r\n\r\n",             // double space
        b"G{}T / HTTP/1.1\r\n\r\n",             // non-tchar method
        b"GET nopath HTTP/1.1\r\n\r\n",         // not origin-form
        b"GET /\x01 HTTP/1.1\r\n\r\n",          // control byte in target
        b"GET / HTTP/1.1\nHost: a\r\n\r\n",     // bare LF line ending
        b"\r\nGET / HTTP/1.1\r\n\r\n",          // leading empty line
    ] {
        let out = roundtrip(bad);
        assert!(
            out.starts_with("HTTP/1.1 400 Bad Request"),
            "expected 400 for {:?}, got: {out}",
            String::from_utf8_lossy(bad)
        );
        assert!(out.contains("Connection: close\r\n"), "parse errors close: {out}");
        assert_eq!(response_count(&out), 1);
    }
}

#[test]
fn malformed_headers_are_400() {
    for bad in [
        &b"GET / HTTP/1.1\r\nNoColon\r\n\r\n"[..],
        b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        b"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
        b"GET / HTTP/1.1\r\nA: 1\r\n B: folded\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: 1x\r\n\r\n",
        b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ] {
        let out = roundtrip(bad);
        assert!(
            out.starts_with("HTTP/1.1 400 Bad Request"),
            "expected 400 for {:?}, got: {out}",
            String::from_utf8_lossy(bad)
        );
    }
}

#[test]
fn oversized_request_line_is_414() {
    let mut raw = b"GET /".to_vec();
    raw.extend(std::iter::repeat_n(b'a', 9000));
    raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let out = roundtrip(&raw);
    assert!(out.starts_with("HTTP/1.1 414 URI Too Long"), "{out}");
}

#[test]
fn unterminated_request_line_is_rejected_incrementally() {
    // No CRLF ever arrives; the limit still fires instead of buffering.
    let out = roundtrip(&[b'A'; 10_000]);
    assert!(out.starts_with("HTTP/1.1 414 URI Too Long"), "{out}");
}

#[test]
fn oversized_header_block_is_431() {
    let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
    raw.extend(std::iter::repeat_n(b'y', 20_000));
    raw.extend_from_slice(b"\r\n\r\n");
    let out = roundtrip(&raw);
    assert!(
        out.starts_with("HTTP/1.1 431 Request Header Fields Too Large"),
        "{out}"
    );
}

#[test]
fn too_many_header_fields_is_431() {
    let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..80 {
        raw.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    let out = roundtrip(&raw);
    assert!(
        out.starts_with("HTTP/1.1 431 Request Header Fields Too Large"),
        "{out}"
    );
    assert!(out.contains("too many header fields"), "{out}");
}

#[test]
fn truncated_body_is_400_on_eof() {
    let out = roundtrip(b"POST /hhi HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert!(out.contains("truncated request"), "{out}");
}

#[test]
fn truncated_header_block_is_400_on_eof() {
    let out = roundtrip(b"GET /hhi HTTP/1.1\r\nHost: exam");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert!(out.contains("truncated request"), "{out}");
}

#[test]
fn declared_body_over_the_limit_is_400() {
    let out = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 70000\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert!(out.contains("body exceeds the size limit"), "{out}");
}

#[test]
fn non_get_methods_are_405_with_allow() {
    for raw in [
        &b"POST /hhi HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"[..],
        b"PUT /hhi HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        b"DELETE /hhi HTTP/1.1\r\n\r\n",
    ] {
        let out = roundtrip(raw);
        assert!(out.starts_with("HTTP/1.1 405 Method Not Allowed"), "{out}");
        assert!(out.contains("Allow: GET, HEAD\r\n"), "{out}");
        assert!(out.contains("only GET and HEAD are served"), "{out}");
    }
}

// ---- HEAD support (RFC 9110 §9.1 makes GET and HEAD mandatory) ----

#[test]
fn head_answers_with_the_get_head_slab_and_zero_body() {
    for route in ["/healthz", "/countries", "/flows", "/providers", "/hhi"] {
        let get_out =
            roundtrip(format!("GET {route} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes());
        let head_out =
            roundtrip(format!("HEAD {route} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes());
        let (get_head, get_body) = get_out.split_once("\r\n\r\n").expect("head/body split");
        let (head_head, head_body) = head_out.split_once("\r\n\r\n").expect("head/body split");
        assert!(head_body.is_empty(), "{route}: HEAD puts zero body bytes on the wire");
        assert_eq!(
            head_head, get_head,
            "{route}: HEAD headers match GET's byte-for-byte"
        );
        // In particular Content-Length still describes the 200
        // representation that GET would have sent.
        let declared: usize = head_head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length on HEAD")
            .parse()
            .unwrap();
        assert_eq!(declared, get_body.len(), "{route}");
    }
}

#[test]
fn head_supports_conditionals_errors_and_parameterized_queries() {
    // HEAD /metrics: 200, no body (the head-compare is skipped — the
    // telemetry body mutates between requests).
    let out = roundtrip(b"HEAD /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    let (head, body) = out.split_once("\r\n\r\n").unwrap();
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{out}");
    assert!(body.is_empty(), "{out}");
    // HEAD on an unknown route is a bodyless 404.
    let out = roundtrip(b"HEAD /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    let (head, body) = out.split_once("\r\n\r\n").unwrap();
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "{out}");
    assert!(body.is_empty(), "{out}");
    // HEAD honours If-None-Match like GET.
    let etag = first_etag(&roundtrip(b"GET /hhi HTTP/1.1\r\nConnection: close\r\n\r\n"));
    let out = roundtrip(
        format!("HEAD /hhi HTTP/1.1\r\nIf-None-Match: {etag}\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    );
    assert!(out.starts_with("HTTP/1.1 304 Not Modified"), "{out}");
    // HEAD runs the query engine too.
    let get_out =
        roundtrip(b"GET /flows?limit=3 HTTP/1.1\r\nConnection: close\r\n\r\n");
    let head_out =
        roundtrip(b"HEAD /flows?limit=3 HTTP/1.1\r\nConnection: close\r\n\r\n");
    let (get_head, _) = get_out.split_once("\r\n\r\n").unwrap();
    let (head_head, head_body) = head_out.split_once("\r\n\r\n").unwrap();
    assert_eq!(get_head, head_head, "parameterized HEAD matches GET headers");
    assert!(head_body.is_empty());
}

// ---- percent-decoding (strict, before route dispatch) ----

#[test]
fn percent_encoded_paths_decode_before_dispatch() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let code = dataset.countries()[0];
    let plain = roundtrip(
        format!("GET /country/{code} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    assert!(plain.starts_with("HTTP/1.1 200 OK"), "{plain}");
    // Fully percent-encoded (e.g. /country/%55%53 for US) must reach
    // the same resource with the same ETag.
    let encoded: String = code.as_str().bytes().map(|b| format!("%{b:02X}")).collect();
    let out = roundtrip(
        format!("GET /country/{encoded} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    assert_eq!(first_etag(&out), first_etag(&plain), "one resource, one ETag");
    // Lowercase hex digits decode too.
    let lower: String = code.as_str().bytes().map(|b| format!("%{b:02x}")).collect();
    let out = roundtrip(
        format!("GET /country/{lower} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
}

#[test]
fn hostile_percent_encodings_are_400_and_close() {
    for bad in [
        &b"GET /x% HTTP/1.1\r\n\r\n"[..],      // bare %
        b"GET /x%2 HTTP/1.1\r\n\r\n",          // truncated escape
        b"GET /x%zz HTTP/1.1\r\n\r\n",         // non-hex digits
        b"GET /x%00 HTTP/1.1\r\n\r\n",         // NUL
        b"GET /x%0d%0aSet-Cookie: HTTP/1.1\r\n\r\n", // CRLF smuggling
        b"GET /x%7F HTTP/1.1\r\n\r\n",         // DEL
        b"GET /x%FF HTTP/1.1\r\n\r\n",         // invalid UTF-8
        b"GET /%80%80 HTTP/1.1\r\n\r\n",       // bare continuation bytes
    ] {
        let out = roundtrip(bad);
        assert!(
            out.starts_with("HTTP/1.1 400 Bad Request"),
            "expected 400 for {:?}, got: {out}",
            String::from_utf8_lossy(bad)
        );
        assert!(out.contains("Connection: close\r\n"), "parse errors close: {out}");
        assert_eq!(response_count(&out), 1);
    }
}

#[test]
fn unknown_routes_404_but_keep_the_connection() {
    // A 404 is an application answer, not a framing error: the pipelined
    // follow-up is still served.
    let out = roundtrip(
        b"GET /nope HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response_count(&out), 2, "{out}");
    let first = out.find("HTTP/1.1 404 Not Found").expect("404 first");
    let second = out.find("HTTP/1.1 200 OK").expect("200 second");
    assert!(first < second, "{out}");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let out = roundtrip(
        b"GET /healthz HTTP/1.1\r\n\r\n\
          GET /hhi HTTP/1.1\r\n\r\n\
          GET /countries HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response_count(&out), 3, "{out}");
    assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 3, "{out}");
    // The first two stay keep-alive; only the last closes.
    assert_eq!(out.matches("Connection: keep-alive\r\n").count(), 2, "{out}");
    assert_eq!(out.matches("Connection: close\r\n").count(), 1, "{out}");
}

#[test]
fn a_parse_error_stops_the_pipeline() {
    // Everything after the malformed request is untrusted framing; the
    // server answers the error and closes instead of resynchronizing.
    let out = roundtrip(b"BAD\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert_eq!(response_count(&out), 1, "{out}");
}

#[test]
fn http10_closes_by_default_and_ignores_later_requests() {
    let out = roundtrip(b"GET /healthz HTTP/1.0\r\n\r\nGET /hhi HTTP/1.0\r\n\r\n");
    assert_eq!(response_count(&out), 1, "{out}");
    assert!(out.contains("Connection: close\r\n"), "{out}");
}

#[test]
fn query_strings_on_fixed_routes_are_typed_400s_not_aliases() {
    // Pre-PR-7 the query string was silently stripped, so /hhi?verbose=1
    // aliased /hhi (same ETag, surprise cache hits). Now fixed routes
    // reject parameters with a typed 400 naming the offender...
    for (wire, param) in [
        (&b"GET /hhi?verbose=1&x=%20 HTTP/1.1\r\n\r\n"[..], "verbose"),
        (b"GET /healthz?x HTTP/1.1\r\n\r\n", "x"),
        (b"GET /metrics?token=abc HTTP/1.1\r\n\r\n", "token"),
        (b"GET /country/ZZ?full=1 HTTP/1.1\r\n\r\n", "full"),
    ] {
        let out = roundtrip(wire);
        assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
        assert!(out.contains(&format!("\\\"{param}\\\"")), "names the parameter: {out}");
        // A query 400 is a routing answer, not a parse failure: the
        // connection stays usable.
        assert!(!out.contains("Connection: close\r\n"), "{out}");
    }
    // ...while a bare "?" (empty query) still serves the route.
    let out = roundtrip(b"GET /hhi? HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    assert_eq!(
        first_etag(&out),
        first_etag(&roundtrip(b"GET /hhi HTTP/1.1\r\nConnection: close\r\n\r\n")),
        "empty query is the same resource"
    );
}

#[test]
fn parameterized_variants_carry_distinct_etags() {
    let base = roundtrip(b"GET /flows HTTP/1.1\r\nConnection: close\r\n\r\n");
    let one = roundtrip(b"GET /flows?limit=1 HTTP/1.1\r\nConnection: close\r\n\r\n");
    let two = roundtrip(b"GET /flows?limit=2 HTTP/1.1\r\nConnection: close\r\n\r\n");
    for out in [&base, &one, &two] {
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    }
    let (e_base, e_one, e_two) = (first_etag(&base), first_etag(&one), first_etag(&two));
    assert_ne!(e_base, e_one, "query variants are distinct representations");
    assert_ne!(e_one, e_two);
    assert_ne!(e_base, e_two);
    // Equivalent spellings canonicalize to one representation: the ETag
    // is stable across parameter order and a repeat (cache-hit) fetch.
    let spelled =
        roundtrip(b"GET /flows?offset=0&limit=1 HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(first_etag(&spelled), e_one, "canonicalization unifies spellings");
    let again = roundtrip(b"GET /flows?limit=1 HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(again, one, "cache hit is byte-identical to the miss");
    // And If-None-Match revalidates the parameterized representation.
    let cond = roundtrip(
        format!("GET /flows?limit=1 HTTP/1.1\r\nIf-None-Match: {e_one}\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    );
    assert!(cond.starts_with("HTTP/1.1 304 Not Modified"), "{cond}");
}

#[test]
fn responses_declare_exact_content_length() {
    let out = roundtrip(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric");
    assert_eq!(declared, body.len(), "{out}");
    assert!(!head.contains("Date:"), "no Date header: responses are byte-stable");
}

#[test]
fn tight_limits_apply_per_connection() {
    let limits = Limits { max_request_line: 16, ..Limits::default() };
    let out = roundtrip_with(b"GET /a-rather-long-target HTTP/1.1\r\n\r\n", &limits);
    assert!(out.starts_with("HTTP/1.1 414"), "{out}");
    // The same input passes under the defaults.
    let out = roundtrip(b"GET /a-rather-long-target HTTP/1.1\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 404"), "{out}");
}

// ---- keep-alive scheduling, conditional GETs, shedding, eviction ----

#[test]
fn pipelined_burst_survives_single_byte_chunking() {
    let wire = b"GET /healthz HTTP/1.1\r\n\r\n\
                 GET /hhi HTTP/1.1\r\n\r\n\
                 GET /countries HTTP/1.1\r\nConnection: close\r\n\r\n";
    let whole = roundtrip(wire);
    for chunk in [1, 2, 3, 7] {
        let mut conn = Trickle::new(wire, chunk);
        serve_connection(state(), &mut conn, &Limits::default(), || false).unwrap();
        let out = String::from_utf8_lossy(&conn.output).into_owned();
        assert_eq!(out, whole, "chunk size {chunk} changed the bytes");
        assert_eq!(response_count(&out), 3);
    }
}

#[test]
fn request_split_mid_header_name_still_parses() {
    // The CRLFCRLF boundary lands mid-chunk and the header name is cut
    // between reads; the incremental parser must reassemble both.
    let wire = b"GET /flows HTTP/1.1\r\nConn\
                 ection: close\r\nX-Pad: 1\r\n\r\n";
    let mut conn = Trickle::new(wire, 4);
    serve_connection(state(), &mut conn, &Limits::default(), || false).unwrap();
    let out = String::from_utf8_lossy(&conn.output).into_owned();
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    assert!(out.contains("Connection: close\r\n"), "{out}");
}

#[test]
fn connection_close_is_case_insensitive() {
    let out = roundtrip(
        b"GET /healthz HTTP/1.1\r\nConnection: CLOSE\r\n\r\nGET /hhi HTTP/1.1\r\n\r\n",
    );
    assert_eq!(response_count(&out), 1, "CLOSE ends the connection: {out}");
    assert!(out.contains("Connection: close\r\n"), "{out}");
}

#[test]
fn http10_with_explicit_keep_alive_stays_open() {
    let out = roundtrip(
        b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n\
          GET /hhi HTTP/1.0\r\n\r\n",
    );
    assert_eq!(response_count(&out), 2, "{out}");
    assert!(out.contains("Connection: keep-alive\r\n"), "{out}");
}

#[test]
fn unknown_connection_token_falls_back_to_version_default() {
    let out = roundtrip(
        b"GET /healthz HTTP/1.1\r\nConnection: upgrade\r\n\r\n\
          GET /hhi HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response_count(&out), 2, "HTTP/1.1 default is keep-alive: {out}");
}

#[test]
fn good_then_bad_answers_the_good_request_first() {
    // The valid request is served before the framing error closes the
    // connection; the trailing valid request is never reached.
    let out = roundtrip(
        b"GET /healthz HTTP/1.1\r\n\r\nBAD\r\n\r\nGET /hhi HTTP/1.1\r\n\r\n",
    );
    assert_eq!(response_count(&out), 2, "{out}");
    let ok = out.find("HTTP/1.1 200 OK").expect("good request served");
    let bad = out.find("HTTP/1.1 400 Bad Request").expect("error answered");
    assert!(ok < bad, "{out}");
    assert!(out.contains("Connection: close\r\n"), "the framing error closes: {out}");
}

#[test]
fn matching_if_none_match_is_304_with_the_same_etag() {
    let full = roundtrip(b"GET /hhi HTTP/1.1\r\nConnection: close\r\n\r\n");
    let etag = first_etag(&full);
    let wire =
        format!("GET /hhi HTTP/1.1\r\nIf-None-Match: {etag}\r\nConnection: close\r\n\r\n");
    let out = roundtrip(wire.as_bytes());
    assert!(out.starts_with("HTTP/1.1 304 Not Modified"), "{out}");
    assert_eq!(first_etag(&out), etag, "304 revalidates the same ETag");
}

#[test]
fn a_304_has_no_body_and_no_content_length() {
    let full = roundtrip(b"GET /countries HTTP/1.1\r\nConnection: close\r\n\r\n");
    let etag = first_etag(&full);
    let wire = format!(
        "GET /countries HTTP/1.1\r\nIf-None-Match: {etag}\r\nConnection: close\r\n\r\n"
    );
    let out = roundtrip(wire.as_bytes());
    let (head, body) = out.split_once("\r\n\r\n").expect("head/body split");
    // RFC 9110 §8.6: a Content-Length on a 304 would describe the 200
    // representation, so the header is omitted entirely.
    assert!(!head.contains("Content-Length:"), "{out}");
    assert!(body.is_empty(), "304 carries no body: {out:?}");
}

#[test]
fn stale_if_none_match_serves_the_full_body() {
    let out = roundtrip(
        b"GET /hhi HTTP/1.1\r\nIf-None-Match: \"0000000000000000\"\r\nConnection: close\r\n\r\n",
    );
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    let (_, body) = out.split_once("\r\n\r\n").unwrap();
    assert!(!body.is_empty(), "{out}");
}

#[test]
fn garbage_if_none_match_serves_the_full_body() {
    for garbage in ["not-even-quoted", "\"", ",,,", "W/", "\u{1F980}"] {
        let wire = format!(
            "GET /hhi HTTP/1.1\r\nIf-None-Match: {garbage}\r\nConnection: close\r\n\r\n"
        );
        let out = roundtrip(wire.as_bytes());
        assert!(out.starts_with("HTTP/1.1 200 OK"), "garbage {garbage:?}: {out}");
    }
}

#[test]
fn wildcard_if_none_match_is_304() {
    let out = roundtrip(b"GET /hhi HTTP/1.1\r\nIf-None-Match: *\r\nConnection: close\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 304 Not Modified"), "{out}");
}

#[test]
fn if_none_match_lists_and_weak_validators_match() {
    let full = roundtrip(b"GET /providers HTTP/1.1\r\nConnection: close\r\n\r\n");
    let etag = first_etag(&full);
    for header in
        [format!("\"miss\", {etag}, \"other\""), format!("W/{etag}"), format!("  {etag}  ")]
    {
        let wire = format!(
            "GET /providers HTTP/1.1\r\nIf-None-Match: {header}\r\nConnection: close\r\n\r\n"
        );
        let out = roundtrip(wire.as_bytes());
        assert!(out.starts_with("HTTP/1.1 304"), "header {header:?}: {out}");
    }
}

#[test]
fn every_data_route_carries_a_stable_etag_but_metrics_does_not() {
    for route in ["/healthz", "/countries", "/flows", "/providers", "/hhi"] {
        let wire = format!("GET {route} HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = first_etag(&roundtrip(wire.as_bytes()));
        let b = first_etag(&roundtrip(wire.as_bytes()));
        assert_eq!(a, b, "{route} ETag is deterministic");
        assert!(a.starts_with('"') && a.ends_with('"'), "{route}: quoted validator {a}");
    }
    let metrics = roundtrip(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    let (head, _) = metrics.split_once("\r\n\r\n").unwrap();
    assert!(!head.contains("ETag:"), "/metrics mutates per request: {head}");
}

#[test]
fn shed_connections_get_a_503_with_retry_after_on_the_wire() {
    /// A connection that never produces a request: it holds its pool
    /// slot until the idle deadline.
    struct Stuck(Arc<Mutex<Vec<u8>>>);
    impl Read for Stuck {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::ErrorKind::WouldBlock.into())
        }
    }
    impl Write for Stuck {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let state = astate();
    let before = state.shed_count();
    let policy =
        ConnPolicy { idle_timeout: Duration::from_millis(50), ..ConnPolicy::default() };
    let pool = Pool::start_with(Arc::clone(&state), 1, PoolConfig { policy, max_conns: 1 });
    let stuck_out = Arc::new(Mutex::new(Vec::new()));
    assert!(pool.submit(Box::new(Stuck(Arc::clone(&stuck_out)))));
    // The slot is taken synchronously, so the next submission sheds.
    let (conn, rx) = MemConn::scripted(&b"GET /healthz HTTP/1.1\r\n\r\n"[..]);
    assert!(pool.submit(Box::new(conn)), "shed connections are still handled");
    let out = String::from_utf8(rx.recv().unwrap()).unwrap();
    assert!(out.starts_with("HTTP/1.1 503 Service Unavailable"), "{out}");
    assert!(out.contains("Retry-After: 1\r\n"), "{out}");
    assert!(out.contains("Connection: close\r\n"), "{out}");
    assert!(out.contains("server overloaded, retry shortly"), "{out}");
    assert_eq!(state.shed_count(), before + 1);
    pool.shutdown();
    assert!(stuck_out.lock().unwrap().is_empty(), "idle eviction closes silently");
}

#[test]
fn idle_timeout_evicts_a_half_request_with_400_on_the_wire() {
    let clock = Arc::new(FakeClock::new());
    let policy =
        ConnPolicy { idle_timeout: Duration::from_millis(200), ..ConnPolicy::default() };
    let mut el = EventLoop::new(
        astate(),
        Box::new(FakeReadiness::always()),
        Arc::clone(&clock) as Arc<dyn govhost_serve::Clock>,
        policy,
        Arc::new(AtomicBool::new(false)),
    );
    let conn = Trickle::new(b"GET /hhi HTTP/1.1\r\nHos", 64);
    // Trickle EOFs after its input; wrap so the loop sees WouldBlock
    // instead (the peer is just slow, not gone).
    struct NoEof(Trickle, Arc<Mutex<Vec<u8>>>);
    impl Read for NoEof {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.read(buf) {
                Ok(0) => Err(std::io::ErrorKind::WouldBlock.into()),
                other => other,
            }
        }
    }
    impl Write for NoEof {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.1.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    el.register(Box::new(NoEof(conn, Arc::clone(&out))), None);
    el.turn(Some(Duration::from_millis(1))).unwrap();
    assert_eq!(el.len(), 1, "partial request keeps the connection before the deadline");
    clock.advance(Duration::from_millis(500));
    el.turn(Some(Duration::from_millis(1))).unwrap();
    assert!(el.is_empty(), "the idle deadline evicts");
    let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    assert!(text.starts_with("HTTP/1.1 400 Bad Request"), "{text}");
    assert!(text.contains("read timeout"), "{text}");
    assert!(text.contains("Connection: close\r\n"), "{text}");
}

/// A peer that sends its final request and then never reads a byte of
/// the response — a deliberate slow-reader, or a client whose network
/// silently dropped.
struct NeverReads {
    input: Vec<u8>,
    pos: usize,
}

impl Read for NeverReads {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.input.len() {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.input.len() - self.pos);
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for NeverReads {
    fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
        Err(std::io::ErrorKind::WouldBlock.into())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The drain deadline: a closing connection whose peer never takes its
/// final response is abandoned after one idle window instead of
/// pinning its event-loop slot forever (which would permanently eat
/// into `max_conns` and turn the server into a 503 generator).
#[test]
fn a_closing_peer_that_never_reads_is_abandoned_at_the_drain_deadline() {
    let clock = Arc::new(FakeClock::new());
    let policy =
        ConnPolicy { idle_timeout: Duration::from_millis(200), ..ConnPolicy::default() };
    let mut el = EventLoop::new(
        astate(),
        Box::new(FakeReadiness::always()),
        Arc::clone(&clock) as Arc<dyn govhost_serve::Clock>,
        policy,
        Arc::new(AtomicBool::new(false)),
    );
    el.register(
        Box::new(NeverReads {
            input: b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
            pos: 0,
        }),
        None,
    );
    el.turn(Some(Duration::from_millis(1))).unwrap();
    assert_eq!(el.len(), 1, "the queued final response holds the slot for now");
    clock.advance(Duration::from_millis(150));
    el.turn(Some(Duration::from_millis(1))).unwrap();
    assert_eq!(el.len(), 1, "still inside the drain window");
    clock.advance(Duration::from_millis(150));
    el.turn(Some(Duration::from_millis(1))).unwrap();
    assert!(el.is_empty(), "the drain deadline reaps the stuck connection");
}

#[test]
fn max_requests_per_conn_closes_after_the_cap() {
    let policy = ConnPolicy { max_requests_per_conn: 3, ..ConnPolicy::default() };
    let mut wire = Vec::new();
    for _ in 0..5 {
        wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    }
    let mut conn = MemConn::new(wire);
    serve_connection_with(state(), &mut conn, &policy, || false).unwrap();
    let out = String::from_utf8_lossy(conn.output()).into_owned();
    assert_eq!(response_count(&out), 3, "requests beyond the cap are not served: {out}");
    assert_eq!(out.matches("Connection: keep-alive\r\n").count(), 2, "{out}");
    assert_eq!(out.matches("Connection: close\r\n").count(), 1, "{out}");
}

#[test]
fn blocking_loop_and_event_loop_emit_identical_bytes() {
    let wire = b"GET /countries HTTP/1.1\r\n\r\n\
                 GET /nope HTTP/1.1\r\n\r\n\
                 GET /hhi HTTP/1.1\r\nConnection: close\r\n\r\n";
    let state = astate();
    let mut blocking = MemConn::new(&wire[..]);
    serve_connection(&state, &mut blocking, &Limits::default(), || false).unwrap();

    let mut el = EventLoop::new(
        Arc::clone(&state),
        Box::new(FakeReadiness::always()),
        Arc::new(FakeClock::new()),
        ConnPolicy::default(),
        Arc::new(AtomicBool::new(false)),
    );
    let (conn, rx) = MemConn::scripted(&wire[..]);
    el.register(Box::new(conn), None);
    while !el.is_empty() {
        el.turn(Some(Duration::from_millis(1))).unwrap();
    }
    let evented = rx.recv().unwrap();
    assert_eq!(blocking.output(), &evented[..], "two schedulers, one wire format");
}

//! HTTP/1.1 conformance suite for the serving stack, run entirely
//! in-process: every case drives the real parser → router → encoder
//! path through [`serve_connection`] over a [`MemConn`], so the suite
//! needs no sockets and pins the exact wire behaviour — which malformed
//! inputs map to which status codes, when connections close, and how
//! pipelining behaves.

use govhost_core::prelude::*;
use govhost_obs::TimeMode;
use govhost_serve::{serve_connection, Limits, MemConn, ServeState};
use govhost_worldgen::prelude::*;
use std::sync::OnceLock;

/// One shared state for the whole suite: the index is immutable and the
/// request telemetry only accumulates, so cases cannot interfere.
fn state() -> &'static ServeState {
    static STATE: OnceLock<ServeState> = OnceLock::new();
    STATE.get_or_init(|| {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        ServeState::with_mode(&dataset, TimeMode::Deterministic)
    })
}

fn roundtrip_with(input: &[u8], limits: &Limits) -> String {
    let mut conn = MemConn::new(input);
    serve_connection(state(), &mut conn, limits, || false).expect("MemConn never errors");
    String::from_utf8_lossy(conn.output()).into_owned()
}

fn roundtrip(input: &[u8]) -> String {
    roundtrip_with(input, &Limits::default())
}

/// Responses are counted by the `Server:` header — status lines never
/// appear inside the JSON bodies, but this is unambiguous either way.
fn response_count(out: &str) -> usize {
    out.matches("\r\nServer: govhost-serve\r\n").count()
}

#[test]
fn malformed_request_lines_are_400_and_close() {
    for bad in [
        &b"GET /\r\n\r\n"[..],                  // missing version
        b"GET / HTTP/2.0\r\n\r\n",              // unsupported version
        b"GET / HTTP/1.1 extra\r\n\r\n",        // four parts
        b"GET  / HTTP/1.1\r\n\r\n",             // double space
        b"G{}T / HTTP/1.1\r\n\r\n",             // non-tchar method
        b"GET nopath HTTP/1.1\r\n\r\n",         // not origin-form
        b"GET /\x01 HTTP/1.1\r\n\r\n",          // control byte in target
        b"GET / HTTP/1.1\nHost: a\r\n\r\n",     // bare LF line ending
        b"\r\nGET / HTTP/1.1\r\n\r\n",          // leading empty line
    ] {
        let out = roundtrip(bad);
        assert!(
            out.starts_with("HTTP/1.1 400 Bad Request"),
            "expected 400 for {:?}, got: {out}",
            String::from_utf8_lossy(bad)
        );
        assert!(out.contains("Connection: close\r\n"), "parse errors close: {out}");
        assert_eq!(response_count(&out), 1);
    }
}

#[test]
fn malformed_headers_are_400() {
    for bad in [
        &b"GET / HTTP/1.1\r\nNoColon\r\n\r\n"[..],
        b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        b"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
        b"GET / HTTP/1.1\r\nA: 1\r\n B: folded\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: 1x\r\n\r\n",
        b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ] {
        let out = roundtrip(bad);
        assert!(
            out.starts_with("HTTP/1.1 400 Bad Request"),
            "expected 400 for {:?}, got: {out}",
            String::from_utf8_lossy(bad)
        );
    }
}

#[test]
fn oversized_request_line_is_414() {
    let mut raw = b"GET /".to_vec();
    raw.extend(std::iter::repeat_n(b'a', 9000));
    raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let out = roundtrip(&raw);
    assert!(out.starts_with("HTTP/1.1 414 URI Too Long"), "{out}");
}

#[test]
fn unterminated_request_line_is_rejected_incrementally() {
    // No CRLF ever arrives; the limit still fires instead of buffering.
    let out = roundtrip(&[b'A'; 10_000]);
    assert!(out.starts_with("HTTP/1.1 414 URI Too Long"), "{out}");
}

#[test]
fn oversized_header_block_is_431() {
    let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
    raw.extend(std::iter::repeat_n(b'y', 20_000));
    raw.extend_from_slice(b"\r\n\r\n");
    let out = roundtrip(&raw);
    assert!(
        out.starts_with("HTTP/1.1 431 Request Header Fields Too Large"),
        "{out}"
    );
}

#[test]
fn too_many_header_fields_is_431() {
    let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..80 {
        raw.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    let out = roundtrip(&raw);
    assert!(
        out.starts_with("HTTP/1.1 431 Request Header Fields Too Large"),
        "{out}"
    );
    assert!(out.contains("too many header fields"), "{out}");
}

#[test]
fn truncated_body_is_400_on_eof() {
    let out = roundtrip(b"POST /hhi HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert!(out.contains("truncated request"), "{out}");
}

#[test]
fn truncated_header_block_is_400_on_eof() {
    let out = roundtrip(b"GET /hhi HTTP/1.1\r\nHost: exam");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert!(out.contains("truncated request"), "{out}");
}

#[test]
fn declared_body_over_the_limit_is_400() {
    let out = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 70000\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert!(out.contains("body exceeds the size limit"), "{out}");
}

#[test]
fn non_get_methods_are_405_with_allow() {
    for raw in [
        &b"POST /hhi HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"[..],
        b"HEAD /hhi HTTP/1.1\r\n\r\n",
        b"DELETE /hhi HTTP/1.1\r\n\r\n",
    ] {
        let out = roundtrip(raw);
        assert!(out.starts_with("HTTP/1.1 405 Method Not Allowed"), "{out}");
        assert!(out.contains("Allow: GET\r\n"), "{out}");
    }
}

#[test]
fn unknown_routes_404_but_keep_the_connection() {
    // A 404 is an application answer, not a framing error: the pipelined
    // follow-up is still served.
    let out = roundtrip(
        b"GET /nope HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response_count(&out), 2, "{out}");
    let first = out.find("HTTP/1.1 404 Not Found").expect("404 first");
    let second = out.find("HTTP/1.1 200 OK").expect("200 second");
    assert!(first < second, "{out}");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let out = roundtrip(
        b"GET /healthz HTTP/1.1\r\n\r\n\
          GET /hhi HTTP/1.1\r\n\r\n\
          GET /countries HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response_count(&out), 3, "{out}");
    assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 3, "{out}");
    // The first two stay keep-alive; only the last closes.
    assert_eq!(out.matches("Connection: keep-alive\r\n").count(), 2, "{out}");
    assert_eq!(out.matches("Connection: close\r\n").count(), 1, "{out}");
}

#[test]
fn a_parse_error_stops_the_pipeline() {
    // Everything after the malformed request is untrusted framing; the
    // server answers the error and closes instead of resynchronizing.
    let out = roundtrip(b"BAD\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    assert_eq!(response_count(&out), 1, "{out}");
}

#[test]
fn http10_closes_by_default_and_ignores_later_requests() {
    let out = roundtrip(b"GET /healthz HTTP/1.0\r\n\r\nGET /hhi HTTP/1.0\r\n\r\n");
    assert_eq!(response_count(&out), 1, "{out}");
    assert!(out.contains("Connection: close\r\n"), "{out}");
}

#[test]
fn query_strings_are_ignored_by_routing() {
    let out = roundtrip(b"GET /hhi?verbose=1&x=%20 HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
}

#[test]
fn responses_declare_exact_content_length() {
    let out = roundtrip(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric");
    assert_eq!(declared, body.len(), "{out}");
    assert!(!head.contains("Date:"), "no Date header: responses are byte-stable");
}

#[test]
fn tight_limits_apply_per_connection() {
    let limits = Limits { max_request_line: 16, ..Limits::default() };
    let out = roundtrip_with(b"GET /a-rather-long-target HTTP/1.1\r\n\r\n", &limits);
    assert!(out.starts_with("HTTP/1.1 414"), "{out}");
    // The same input passes under the defaults.
    let out = roundtrip(b"GET /a-rather-long-target HTTP/1.1\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 404"), "{out}");
}

//! Property tests for the serving stack on the in-repo harness: the
//! parser and the full connection loop must never panic on arbitrary
//! bytes delivered in arbitrary chunkings, and well-formed pipelines
//! must get exactly one response per request with bytes that do not
//! depend on how the input was framed into reads. Counterexamples are
//! persisted in `tests/regressions/prop_http.txt`.

use govhost_core::prelude::*;
use govhost_harness::{gens, prop_assert, prop_assert_eq, Config, Gen};
use govhost_obs::TimeMode;
use govhost_serve::{
    serve_connection, ConnPolicy, EventLoop, FakeClock, FakeReadiness, Limits, MemConn,
    ServeState,
};
use govhost_worldgen::prelude::*;
use std::io::{Read, Write};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

const REGRESSIONS: &str = "tests/regressions/prop_http.txt";

fn cfg(name: &str) -> Config {
    Config::new(name).cases(256).regressions(REGRESSIONS)
}

fn state() -> &'static ServeState {
    static STATE: OnceLock<ServeState> = OnceLock::new();
    STATE.get_or_init(|| {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        ServeState::with_mode(&dataset, TimeMode::Deterministic)
    })
}

/// Shared `Arc` state for the event-loop properties.
fn astate() -> Arc<ServeState> {
    static STATE: OnceLock<Arc<ServeState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(|| {
        let world = World::generate(&GenParams::tiny());
        let dataset = GovDataset::build(&world, &BuildOptions::default());
        Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic))
    }))
}

/// A [`Connection`](govhost_serve::Connection) that yields its input at
/// most `step` bytes per read — the adversarial chunking transport.
struct Trickle {
    data: Vec<u8>,
    pos: usize,
    step: usize,
    out: Vec<u8>,
}

impl Trickle {
    fn new(data: Vec<u8>, step: usize) -> Trickle {
        Trickle { data, pos: 0, step: step.max(1), out: Vec::new() }
    }
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for Trickle {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.out.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Arbitrary bytes, biased toward HTTP-ish characters so the generator
/// reaches deep into the parser instead of failing on byte one.
fn arb_bytes() -> Gen<Vec<u8>> {
    let httpish: Vec<u64> = b"GET / HTTP/1.\r\n:0".iter().map(|b| *b as u64).collect();
    let byte = gens::one_of(vec![gens::u64_range(0, 256), gens::select(httpish)]);
    gens::vec(byte, 0, 200).map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// Request paths for well-formed pipelines. `/metrics` is deliberately
/// absent: its body reflects accumulated request counters, so it is the
/// one route whose bytes depend on suite-global request history (the
/// determinism pin in `tests/serve_http.rs` covers it with a controlled
/// sequence instead).
fn arb_paths() -> Gen<Vec<&'static str>> {
    let route = gens::select(vec![
        "/healthz",
        "/countries",
        "/flows",
        "/providers",
        "/hhi",
        "/country/ZZ",
        "/country/%5A%5A",
        "/nope",
        "/flows?limit=2",
        "/flows?sort=share&min_share=0.1",
        "/providers?sort=asn",
        "/countries?sort=hhi",
        "/hhi?x=1",
    ]);
    gens::vec(route, 1, 6)
}

/// Query-string fragments biased toward the engine's grammar, salted
/// with hostile percent-escapes and separator abuse.
fn arb_query() -> Gen<String> {
    let frag = gens::select(vec![
        "limit=1",
        "limit=500",
        "limit=junk",
        "limit=999999999999999999999",
        "offset=3",
        "sort=share",
        "sort=hhi",
        "from=EU",
        "from=*",
        "to=%55%53",
        "category=3p_global",
        "category=",
        "min_share=0.5",
        "min_share=nan",
        "region=na",
        "country=us",
        "min_countries=2",
        "lens=registration",
        "x=1",
        "limit",
        "=",
        "%",
        "%2",
        "%zz",
        "a=%00",
        "a=%ff",
        "a%3db",
        "&",
    ]);
    gens::vec(frag, 0, 4).map(|v| v.join("&"))
}

fn pipeline_bytes(paths: &[&str]) -> Vec<u8> {
    let mut input = String::new();
    for (i, path) in paths.iter().enumerate() {
        let close = if i + 1 == paths.len() { "Connection: close\r\n" } else { "" };
        input.push_str(&format!("GET {path} HTTP/1.1\r\n{close}\r\n"));
    }
    input.into_bytes()
}

#[test]
fn parser_never_panics_on_arbitrary_bytes() {
    let inputs = arb_bytes().zip(gens::usize_range(1, 9));
    cfg("parser_never_panics_on_arbitrary_bytes").run(&inputs, |(bytes, chunk)| {
        let mut parser = govhost_serve::RequestParser::new(Limits::default());
        for piece in bytes.chunks(*chunk) {
            parser.push(piece);
            loop {
                match parser.next_request() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    // A typed rejection is a valid outcome; a panic is not.
                    Err(_) => return Ok(()),
                }
            }
        }
        Ok(())
    });
}

#[test]
fn serve_connection_never_panics_on_arbitrary_bytes() {
    let inputs = arb_bytes().zip(gens::usize_range(1, 9));
    cfg("serve_connection_never_panics_on_arbitrary_bytes").run(&inputs, |(bytes, chunk)| {
        let mut conn = Trickle::new(bytes.clone(), *chunk);
        serve_connection(state(), &mut conn, &Limits::default(), || false)
            .map_err(|e| format!("in-memory transport errored: {e}"))?;
        // Whatever came in, anything written out is a whole response.
        prop_assert!(
            conn.out.is_empty() || conn.out.starts_with(b"HTTP/1.1 "),
            "output must start with a status line"
        );
        Ok(())
    });
}

#[test]
fn well_formed_pipelines_get_one_response_per_request() {
    let inputs = arb_paths().zip(gens::usize_range(1, 9));
    cfg("well_formed_pipelines_get_one_response_per_request").run(&inputs, |(paths, chunk)| {
        let mut conn = Trickle::new(pipeline_bytes(paths), *chunk);
        serve_connection(state(), &mut conn, &Limits::default(), || false)
            .map_err(|e| format!("in-memory transport errored: {e}"))?;
        let out = String::from_utf8_lossy(&conn.out).into_owned();
        prop_assert_eq!(
            out.matches("\r\nServer: govhost-serve\r\n").count(),
            paths.len(),
            "one response per pipelined request"
        );
        prop_assert!(!out.contains("HTTP/1.1 5"), "the server never 5xxs");
        Ok(())
    });
}

#[test]
fn response_bytes_do_not_depend_on_read_chunking() {
    let inputs = arb_paths().zip(gens::usize_range(1, 9));
    cfg("response_bytes_do_not_depend_on_read_chunking").run(&inputs, |(paths, chunk)| {
        let bytes = pipeline_bytes(paths);
        let mut whole = MemConn::new(bytes.clone());
        serve_connection(state(), &mut whole, &Limits::default(), || false)
            .map_err(|e| format!("in-memory transport errored: {e}"))?;
        let mut trickled = Trickle::new(bytes, *chunk);
        serve_connection(state(), &mut trickled, &Limits::default(), || false)
            .map_err(|e| format!("in-memory transport errored: {e}"))?;
        prop_assert_eq!(
            whole.output(),
            &trickled.out[..],
            "framing of reads must not change the response bytes"
        );
        Ok(())
    });
}

#[test]
fn arbitrary_query_strings_never_panic_and_answer_200_or_400() {
    let route = gens::select(vec!["/flows", "/providers", "/countries", "/hhi", "/healthz"]);
    let inputs = route.zip(arb_query()).zip(gens::usize_range(1, 9));
    cfg("arbitrary_query_strings_never_panic_and_answer_200_or_400").run(
        &inputs,
        |((route, query), chunk)| {
            let wire =
                format!("GET {route}?{query} HTTP/1.1\r\nConnection: close\r\n\r\n").into_bytes();
            let mut conn = Trickle::new(wire, *chunk);
            serve_connection(state(), &mut conn, &Limits::default(), || false)
                .map_err(|e| format!("in-memory transport errored: {e}"))?;
            let out = String::from_utf8_lossy(&conn.out).into_owned();
            prop_assert!(
                out.starts_with("HTTP/1.1 200 OK") || out.starts_with("HTTP/1.1 400 Bad Request"),
                "a query is answered 200 or a typed 400, never anything else"
            );
            prop_assert_eq!(
                out.matches("\r\nServer: govhost-serve\r\n").count(),
                1,
                "exactly one response"
            );
            Ok(())
        },
    );
}

#[test]
fn arbitrary_percent_escapes_in_paths_never_panic() {
    let seg = gens::select(vec![
        "%55%53", "%2e%2e", "%2F", "%", "%2", "%zz", "%00", "%ff", "%C3%A9", "%0d%0a", "%7f",
        "US", "a",
    ]);
    let inputs = gens::vec(seg, 1, 4).zip(gens::usize_range(1, 9));
    cfg("arbitrary_percent_escapes_in_paths_never_panic").run(&inputs, |(segs, chunk)| {
        let path: String = segs.concat();
        let wire =
            format!("GET /country/{path} HTTP/1.1\r\nConnection: close\r\n\r\n").into_bytes();
        let mut conn = Trickle::new(wire, *chunk);
        serve_connection(state(), &mut conn, &Limits::default(), || false)
            .map_err(|e| format!("in-memory transport errored: {e}"))?;
        let out = String::from_utf8_lossy(&conn.out).into_owned();
        prop_assert!(
            out.starts_with("HTTP/1.1 200 OK")
                || out.starts_with("HTTP/1.1 400 Bad Request")
                || out.starts_with("HTTP/1.1 404 Not Found"),
            "percent-laden paths resolve, reject, or miss — never crash"
        );
        prop_assert_eq!(
            out.matches("\r\nServer: govhost-serve\r\n").count(),
            1,
            "exactly one response"
        );
        Ok(())
    });
}

// ---- event-loop properties ----

/// A [`Trickle`] whose output lands in a shared buffer, so the bytes
/// survive the [`EventLoop`] consuming (and dropping) the connection.
struct LoopTrickle {
    inner: Trickle,
    out: Arc<Mutex<Vec<u8>>>,
}

impl LoopTrickle {
    fn new(data: Vec<u8>, step: usize) -> (LoopTrickle, Arc<Mutex<Vec<u8>>>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        (LoopTrickle { inner: Trickle::new(data, step), out: Arc::clone(&out) }, out)
    }
}

impl Read for LoopTrickle {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for LoopTrickle {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.out.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run `bytes` through a fresh deterministic event loop, trickling at
/// most `step` bytes per read, and return everything the server wrote.
fn event_loop_serve(bytes: Vec<u8>, step: usize) -> Result<Vec<u8>, String> {
    let mut el = EventLoop::new(
        astate(),
        Box::new(FakeReadiness::always()),
        Arc::new(FakeClock::new()),
        ConnPolicy::default(),
        Arc::new(AtomicBool::new(false)),
    );
    let (conn, out) = LoopTrickle::new(bytes, step);
    el.register(Box::new(conn), None);
    let mut turns = 0usize;
    while !el.is_empty() {
        el.turn(Some(Duration::from_millis(1))).map_err(|e| format!("turn errored: {e}"))?;
        turns += 1;
        if turns > 10_000 {
            return Err("event loop did not converge".to_string());
        }
    }
    let out = out.lock().unwrap().clone();
    Ok(out)
}

#[test]
fn event_loop_never_panics_on_arbitrary_bytes() {
    let inputs = arb_bytes().zip(gens::usize_range(1, 9));
    cfg("event_loop_never_panics_on_arbitrary_bytes").run(&inputs, |(bytes, chunk)| {
        let out = event_loop_serve(bytes.clone(), *chunk)?;
        prop_assert!(
            out.is_empty() || out.starts_with(b"HTTP/1.1 "),
            "output must start with a status line"
        );
        Ok(())
    });
}

#[test]
fn event_loop_bytes_match_the_blocking_loop() {
    let inputs = arb_paths().zip(gens::usize_range(1, 9));
    cfg("event_loop_bytes_match_the_blocking_loop").run(&inputs, |(paths, chunk)| {
        let bytes = pipeline_bytes(paths);
        let mut blocking = MemConn::new(bytes.clone());
        serve_connection(state(), &mut blocking, &Limits::default(), || false)
            .map_err(|e| format!("in-memory transport errored: {e}"))?;
        let evented = event_loop_serve(bytes, *chunk)?;
        prop_assert_eq!(
            blocking.output(),
            &evented[..],
            "the readiness loop and the blocking loop share one wire format"
        );
        Ok(())
    });
}

/// Drop the `Connection:` response header, the one line that
/// legitimately depends on how requests were packed into connections
/// (each connection's final response closes; earlier ones keep alive).
fn strip_connection_lines(out: &[u8]) -> String {
    String::from_utf8_lossy(out)
        .replace("Connection: keep-alive\r\n", "")
        .replace("Connection: close\r\n", "")
}

#[test]
fn response_bytes_do_not_depend_on_connection_packing() {
    // `splits[i]` opens a new connection before request `i + 1`.
    let inputs = arb_paths()
        .zip(gens::vec(gens::bool_any(), 5, 5))
        .zip(gens::usize_range(1, 9));
    cfg("response_bytes_do_not_depend_on_connection_packing").run(
        &inputs,
        |((paths, splits), chunk)| {
            let mut one_conn = MemConn::new(pipeline_bytes(paths));
            serve_connection(state(), &mut one_conn, &Limits::default(), || false)
                .map_err(|e| format!("in-memory transport errored: {e}"))?;

            let mut groups: Vec<Vec<&str>> = vec![vec![paths[0]]];
            for (i, path) in paths.iter().enumerate().skip(1) {
                if splits[(i - 1) % splits.len()] {
                    groups.push(Vec::new());
                }
                groups.last_mut().expect("non-empty").push(path);
            }
            let mut packed = Vec::new();
            for group in &groups {
                let mut conn = Trickle::new(pipeline_bytes(group), *chunk);
                serve_connection(state(), &mut conn, &Limits::default(), || false)
                    .map_err(|e| format!("in-memory transport errored: {e}"))?;
                packed.extend_from_slice(&conn.out);
            }
            prop_assert_eq!(
                strip_connection_lines(one_conn.output()),
                strip_connection_lines(&packed),
                "packing requests into connections must not change response bytes"
            );
            Ok(())
        },
    );
}

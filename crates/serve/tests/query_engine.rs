//! Integration suite for the parameterized query engine: wire-level
//! canonicalization (equivalent spellings share one representation and
//! one cache entry), typed 400s naming the offending parameter,
//! cache-hit/miss/eviction accounting in `/metrics`, and the hot-swap
//! contract — swapping in an index built from identical inputs leaves
//! every route's bytes and ETags unchanged, across 1/2/4 workers.

use govhost_core::prelude::*;
use govhost_obs::TimeMode;
use govhost_serve::{
    serve_connection, Limits, MemConn, Pool, QueryIndex, RouteQuery, ServeState,
};
use govhost_worldgen::prelude::*;
use std::sync::Arc;

fn fresh_state() -> (GovDataset, ServeState) {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let state = ServeState::with_mode(&dataset, TimeMode::Deterministic);
    (dataset, state)
}

fn get(state: &ServeState, target: &str) -> String {
    let raw = format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n");
    let mut conn = MemConn::new(raw.into_bytes());
    serve_connection(state, &mut conn, &Limits::default(), || false).expect("in-memory serve");
    String::from_utf8_lossy(conn.output()).into_owned()
}

fn etag_of(out: &str) -> &str {
    out.lines().find_map(|l| l.strip_prefix("ETag: ")).expect("response carries an ETag")
}

fn metrics_count(state: &ServeState, needle: &str) -> u64 {
    let metrics = get(state, "/metrics");
    let (_, body) = metrics.split_once("\r\n\r\n").expect("metrics body");
    body.lines()
        .find_map(|l| l.strip_prefix(needle).map(|rest| rest.trim().parse().unwrap()))
        .unwrap_or_else(|| panic!("no series {needle:?} in:\n{body}"))
}

#[test]
fn equivalent_spellings_share_one_representation_and_cache_entry() {
    let (_dataset, state) = fresh_state();
    // Three spellings of the same canonical query: reordered params,
    // explicit defaults, alternative numeric forms, case-folded scope.
    let a = get(&state, "/flows?from=eu&min_share=0.10&limit=50");
    let b = get(&state, "/flows?min_share=1e-1&from=EU");
    let c = get(&state, "/flows?offset=0&from=EU&min_share=0.1");
    assert!(a.starts_with("HTTP/1.1 200 OK"), "{a}");
    assert_eq!(a, b, "spellings canonicalize to one representation");
    assert_eq!(a, c);
    assert_eq!(state.result_cache().len(), 1, "one cache entry for all spellings");
    assert_eq!(metrics_count(&state, "http_query_cache{outcome=\"miss\"} "), 1);
    assert_eq!(metrics_count(&state, "http_query_cache{outcome=\"hit\"} "), 2);
    // The body echoes the canonical query string, so clients can see
    // the normalization.
    assert!(a.contains("\"query\":\""), "{a}");
    let parsed = RouteQuery::parse("/flows", "from=eu&min_share=0.10&limit=50").unwrap();
    assert!(a.contains(&format!("\"query\":\"{}\"", parsed.canonical())), "{a}");
}

#[test]
fn typed_400s_name_the_offending_parameter() {
    let (_dataset, state) = fresh_state();
    for (target, param) in [
        ("/flows?bogus=1", "bogus"),
        ("/flows?limit=junk", "limit"),
        ("/flows?limit=0", "limit"),
        ("/flows?min_share=nan", "min_share"),
        ("/flows?sort=hhi", "sort"),
        ("/flows?from=EU&from=US", "from"),
        ("/flows?category=gov", "category"),
        ("/providers?country=EUU", "country"),
        ("/providers?min_countries=-1", "min_countries"),
        ("/countries?region=atlantis", "region"),
        ("/countries?sort=share", "sort"),
        ("/flows?a=%zz", "a"),
    ] {
        let out = get(&state, target);
        assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{target}: {out}");
        assert!(
            out.contains(&format!("\\\"{param}\\\"")),
            "{target}: the 400 must name {param:?}: {out}"
        );
    }
    // Typed 400s are never cached.
    assert!(state.result_cache().is_empty());
    assert_eq!(metrics_count(&state, "http_query_cache{outcome=\"miss\"} "), 0);
}

#[test]
fn eviction_is_deterministic_lru_and_counted() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let state = ServeState::with_config(&dataset, TimeMode::Deterministic, 2);
    let q1 = get(&state, "/flows?limit=1");
    let _q2 = get(&state, "/flows?limit=2");
    let _q3 = get(&state, "/flows?limit=3"); // evicts limit=1 (LRU)
    let _q2_again = get(&state, "/flows?limit=2"); // hit, bumps recency
    let q1_again = get(&state, "/flows?limit=1"); // miss again, evicts limit=3
    assert_eq!(q1, q1_again, "a re-render after eviction is byte-identical");
    assert_eq!(metrics_count(&state, "http_query_cache{outcome=\"miss\"} "), 4);
    assert_eq!(metrics_count(&state, "http_query_cache{outcome=\"hit\"} "), 1);
    assert_eq!(metrics_count(&state, "http_query_cache{outcome=\"eviction\"} "), 2);
    assert_eq!(state.result_cache().len(), 2, "capacity holds");
    // And a zero capacity disables caching entirely without changing bytes.
    let uncached = ServeState::with_config(&dataset, TimeMode::Deterministic, 0);
    assert_eq!(get(&uncached, "/flows?limit=1"), q1);
    assert!(uncached.result_cache().is_empty());
}

/// The fixed request mix for the swap pin: every fixed route plus a
/// spread of parameterized queries (each canonical query distinct, so
/// cache accounting stays deterministic). `/metrics` is excluded — its
/// body legitimately accumulates across the pre/post sequences.
fn swap_mix(dataset: &GovDataset) -> Vec<String> {
    let country = dataset.countries()[0];
    vec![
        "/healthz".to_string(),
        "/countries".to_string(),
        format!("/country/{country}"),
        "/flows".to_string(),
        "/providers".to_string(),
        "/hhi".to_string(),
        "/flows?limit=5".to_string(),
        "/flows?sort=share&min_share=0.01".to_string(),
        "/flows?lens=registration&category=3p_global".to_string(),
        "/providers?sort=countries&limit=10".to_string(),
        "/countries?sort=hhi&limit=10".to_string(),
    ]
}

/// Serve the mix through a real `threads`-worker pool, one sequential
/// client, returning the full response bytes per target.
fn pool_responses(state: &Arc<ServeState>, targets: &[String], threads: usize) -> Vec<Vec<u8>> {
    let pool = Pool::start(Arc::clone(state), threads, Limits::default());
    let mut out = Vec::new();
    for target in targets {
        let raw = format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n");
        let (conn, rx) = MemConn::scripted(raw.into_bytes());
        assert!(pool.submit(Box::new(conn)), "pool accepts while running");
        out.push(rx.recv().expect("connection was served"));
    }
    pool.shutdown();
    out
}

#[test]
fn identical_input_swap_leaves_every_route_byte_identical() {
    let world = World::generate(&GenParams::tiny());
    for threads in [1usize, 2, 4] {
        let dataset = GovDataset::build(&world, &BuildOptions { threads, ..Default::default() });
        let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
        let targets = swap_mix(&dataset);
        let before = pool_responses(&state, &targets, threads);
        assert!(!state.result_cache().is_empty(), "the mix populated the cache");

        // Hot-swap in an index built from the same dataset.
        state.swap_index(QueryIndex::build(&dataset));
        assert!(state.result_cache().is_empty(), "swap invalidates the result cache");

        let after = pool_responses(&state, &targets, threads);
        for ((target, b), a) in targets.iter().zip(&before).zip(&after) {
            assert_eq!(
                b, a,
                "workers={threads}: {target} changed across an identical-input swap"
            );
            let text = String::from_utf8_lossy(b);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{target}: {text}");
            // ETags are part of the bytes, but pin them explicitly:
            // revalidation tokens survive the swap.
            let text_after = String::from_utf8_lossy(a);
            assert_eq!(etag_of(&text), etag_of(&text_after), "{target}");
        }
    }
}

/// The history-route request mix: every history route, parameterless
/// (precomputed slab) and parameterized (result-cache path).
fn history_mix(dataset: &GovDataset) -> Vec<String> {
    let country = dataset.countries()[0];
    vec![
        "/hhi/history".to_string(),
        format!("/country/{country}/history"),
        "/providers/AS13335/history".to_string(),
        "/hhi/history?from=1&to=3".to_string(),
        format!("/country/{country}/history?limit=2&offset=1"),
        "/providers/13335/history?from=0".to_string(),
    ]
}

#[test]
fn history_routes_are_byte_identical_across_worker_counts() {
    let mut world = World::generate(&GenParams::tiny());
    let outcome = govhost_core::evolve::evolve_with_systems(
        &mut world,
        3,
        &BuildOptions::default(),
        &govhost_worldgen::default_systems(),
    )
    .expect("tiny world evolves");
    let targets = history_mix(&outcome.dataset);
    let mut base: Option<Vec<Vec<u8>>> = None;
    for threads in [1usize, 2, 4] {
        let state = Arc::new(ServeState::with_timeline_config(
            &outcome.dataset,
            &outcome.timeline,
            TimeMode::Deterministic,
            govhost_serve::DEFAULT_RESULT_CACHE,
        ));
        let responses = pool_responses(&state, &targets, threads);
        for (target, out) in targets.iter().zip(&responses) {
            let text = String::from_utf8_lossy(out);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "workers={threads} {target}: {text}");
            // Every history response revalidates: panics if no ETag.
            etag_of(&text);
        }
        // The three parameterized requests land in the shared result
        // cache; the parameterless ones answer from precomputed slabs.
        assert_eq!(state.result_cache().len(), 3, "workers={threads}");
        match &base {
            None => base = Some(responses),
            Some(base) => {
                for ((target, b), r) in targets.iter().zip(base).zip(&responses) {
                    assert_eq!(b, r, "workers={threads}: {target} bytes drifted");
                }
            }
        }
    }
}

#[test]
fn a_swap_reaches_new_requests_while_old_snapshots_stand() {
    let (dataset, state) = fresh_state();
    let pinned = state.index();
    let etag_before = pinned.hhi_slab().etag().to_string();
    state.swap_index(QueryIndex::build(&dataset));
    // The pre-swap snapshot is untouched (in-flight requests finish
    // against it) and the new index serves identical bytes for
    // identical inputs.
    assert_eq!(pinned.hhi_slab().etag(), etag_before);
    assert_eq!(state.index().hhi_slab().etag(), etag_before);
    let out = get(&state, "/hhi");
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    assert!(out.contains(&format!("ETag: {etag_before}\r\n")), "{out}");
}

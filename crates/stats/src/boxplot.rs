//! Five-number summaries for boxplots (Fig. 11 shows HHI distributions per
//! hosting category as boxplots).

use crate::descriptive::quantile;

/// Minimum, quartiles, and maximum of a sample, plus Tukey whiskers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumberSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Lower whisker: smallest observation within 1.5·IQR of Q1.
    pub whisker_low: f64,
    /// Upper whisker: largest observation within 1.5·IQR of Q3.
    pub whisker_high: f64,
    /// Number of observations.
    pub n: usize,
}

impl FiveNumberSummary {
    /// Summarize a non-empty sample. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let q1 = quantile(xs, 0.25);
        let q3 = quantile(xs, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Whiskers reach the most extreme points inside the Tukey fences,
        // clamped to the box edges: with sparse data the smallest in-fence
        // point can exceed the interpolated Q1, in which case the whisker
        // degenerates onto the box (matplotlib's behaviour).
        let whisker_low = xs
            .iter()
            .copied()
            .filter(|x| *x >= lo_fence)
            .fold(f64::INFINITY, f64::min)
            .min(q1);
        let whisker_high = xs
            .iter()
            .copied()
            .filter(|x| *x <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(q3);
        Some(Self {
            min,
            q1,
            median: quantile(xs, 0.5),
            q3,
            max,
            whisker_low,
            whisker_high,
            n: xs.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_grid() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let s = FiveNumberSummary::of(&xs).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
        assert!((s.median - 0.5).abs() < 1e-12);
        assert!((s.q1 - 0.25).abs() < 1e-12);
        assert!((s.q3 - 0.75).abs() < 1e-12);
        assert!((s.iqr() - 0.5).abs() < 1e-12);
        assert_eq!(s.n, 101);
    }

    #[test]
    fn whiskers_exclude_outliers() {
        let mut xs: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        xs.push(50.0); // gross outlier
        let s = FiveNumberSummary::of(&xs).unwrap();
        assert_eq!(s.max, 50.0);
        assert!(s.whisker_high < 2.0, "whisker must not chase the outlier");
    }

    #[test]
    fn empty_is_none_singleton_is_degenerate() {
        assert!(FiveNumberSummary::of(&[]).is_none());
        let s = FiveNumberSummary::of(&[0.7]).unwrap();
        assert_eq!(s.min, 0.7);
        assert_eq!(s.median, 0.7);
        assert_eq!(s.max, 0.7);
        assert_eq!(s.whisker_low, 0.7);
        assert_eq!(s.whisker_high, 0.7);
    }
}

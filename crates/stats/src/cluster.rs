//! Hierarchical agglomerative clustering with Ward linkage.
//!
//! §5.3 of the paper clusters the 61 countries by their 4-dimensional
//! hosting "signature" (share of URLs or bytes in each provider category)
//! using HCA with the Ward distance, yielding the three-branch dendrograms
//! of Fig. 5. This module implements the classic O(n³) agglomerative
//! algorithm with the Lance–Williams update for Ward linkage — more than
//! fast enough for the 61×4 matrix, and exact.

/// One merge step in the dendrogram, using SciPy-style indexing: leaves are
/// `0..n`, and the cluster created by merge step `s` has id `n + s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Merge height (Ward distance, in the units of the input space).
    pub height: f64,
    /// Number of leaves in the newly-formed cluster.
    pub size: usize,
}

/// The full merge tree produced by [`Dendrogram::ward`].
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Run Ward-linkage agglomerative clustering on `data` (one observation
    /// per row). Distances between merged clusters follow the
    /// Lance–Williams recurrence on squared Euclidean distances; reported
    /// heights are the square roots (the scale SciPy reports).
    ///
    /// ```
    /// use govhost_stats::cluster::Dendrogram;
    /// let data = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
    /// let d = Dendrogram::ward(&data);
    /// let labels = d.cut(2);
    /// assert_eq!(labels[0], labels[1]);
    /// assert_ne!(labels[0], labels[2]);
    /// ```
    ///
    /// # Panics
    /// Panics if rows have unequal lengths or `data` is empty.
    pub fn ward(data: &[Vec<f64>]) -> Self {
        let n = data.len();
        assert!(n > 0, "cannot cluster zero observations");
        let dim = data[0].len();
        assert!(data.iter().all(|r| r.len() == dim), "ragged observation matrix");

        if n == 1 {
            return Self { n_leaves: 1, merges: Vec::new() };
        }

        // Active cluster bookkeeping. `dist[i][j]` holds the *squared* Ward
        // distance between active clusters i and j (by current id slot).
        let mut active: Vec<usize> = (0..n).collect(); // cluster ids
        let mut sizes: Vec<usize> = vec![1; n];
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d2: f64 =
                    data[i].iter().zip(&data[j]).map(|(a, b)| (a - b) * (a - b)).sum();
                // Ward's initial distance between singletons is d²/2 * 2 = d²;
                // the convention matching SciPy is d(i,j)² = ||xi - xj||².
                dist[i][j] = d2;
                dist[j][i] = d2;
            }
        }

        let mut merges = Vec::with_capacity(n - 1);
        // `slot_of[k]` maps a slot index (0..n) to the id of the cluster it
        // currently holds; merged-away slots are tombstoned.
        let mut alive: Vec<bool> = vec![true; n];

        for step in 0..(n - 1) {
            // Find the closest active pair.
            let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !alive[j] {
                        continue;
                    }
                    if dist[i][j] < best.2 {
                        best = (i, j, dist[i][j]);
                    }
                }
            }
            let (i, j, d2) = best;
            debug_assert!(i < n && j < n);

            let new_id = n + step;
            merges.push(Merge {
                a: active[i].min(active[j]),
                b: active[i].max(active[j]),
                height: d2.max(0.0).sqrt(),
                size: sizes[i] + sizes[j],
            });

            // Lance–Williams Ward update into slot i; kill slot j.
            let (ni, nj) = (sizes[i] as f64, sizes[j] as f64);
            for k in 0..n {
                if !alive[k] || k == i || k == j {
                    continue;
                }
                let nk = sizes[k] as f64;
                let updated = ((ni + nk) * dist[i][k] + (nj + nk) * dist[j][k]
                    - nk * dist[i][j])
                    / (ni + nj + nk);
                dist[i][k] = updated;
                dist[k][i] = updated;
            }
            sizes[i] += sizes[j];
            active[i] = new_id;
            alive[j] = false;
        }

        Self { n_leaves: n, merges }
    }

    /// Number of original observations.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge steps, in execution order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut the tree into exactly `k` clusters; returns a label in `0..k`
    /// for each leaf. Labels are assigned in order of first appearance.
    ///
    /// # Panics
    /// Panics if `k` is 0 or greater than the number of leaves.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n_leaves, "cut size out of range");
        // Apply the first n-k merges with a union-find.
        let total = self.n_leaves + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, m) in self.merges.iter().take(self.n_leaves - k).enumerate() {
            let new_id = self.n_leaves + step;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n_leaves);
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            labels.push(label);
        }
        labels
    }

    /// Leaf ordering for display: a left-to-right traversal of the final
    /// tree, so that nearby leaves are similar (the x-axis of Fig. 5).
    pub fn leaf_order(&self) -> Vec<usize> {
        if self.merges.is_empty() {
            return (0..self.n_leaves).collect();
        }
        // children[id] for internal nodes.
        let mut children = std::collections::HashMap::new();
        for (step, m) in self.merges.iter().enumerate() {
            children.insert(self.n_leaves + step, (m.a, m.b));
        }
        let root = self.n_leaves + self.merges.len() - 1;
        let mut order = Vec::with_capacity(self.n_leaves);
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match children.get(&id) {
                Some(&(a, b)) => {
                    // Push right first so left is visited first.
                    stack.push(b);
                    stack.push(a);
                }
                None => order.push(id),
            }
        }
        order
    }

    /// Heights of all merges, in execution order. For Ward linkage on a
    /// correctly-implemented algorithm this sequence is non-decreasing.
    pub fn heights(&self) -> Vec<f64> {
        self.merges.iter().map(|m| m.height).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups far apart must be separated by the 2-cut.
    #[test]
    fn separates_two_obvious_groups() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ];
        let d = Dendrogram::ward(&data);
        let labels = d.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn heights_are_monotone_nondecreasing() {
        let data: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64 * 0.7).sin(), (i as f64 * 1.3).cos(), i as f64 * 0.01])
            .collect();
        let d = Dendrogram::ward(&data);
        let h = d.heights();
        for w in h.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "Ward heights must be monotone: {} then {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn merge_count_and_sizes() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let d = Dendrogram::ward(&data);
        assert_eq!(d.merges().len(), 3);
        assert_eq!(d.merges().last().unwrap().size, 4);
    }

    #[test]
    fn first_merge_is_closest_pair() {
        let data = vec![vec![0.0], vec![5.0], vec![5.2], vec![9.0]];
        let d = Dendrogram::ward(&data);
        let first = d.merges()[0];
        assert_eq!((first.a, first.b), (1, 2));
        assert!((first.height - 0.2).abs() < 1e-9);
    }

    #[test]
    fn cut_extremes() {
        let data = vec![vec![0.0], vec![1.0], vec![5.0]];
        let d = Dendrogram::ward(&data);
        assert_eq!(d.cut(1), vec![0, 0, 0]);
        let all = d.cut(3);
        assert_eq!(all.len(), 3);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn leaf_order_is_a_permutation() {
        let data: Vec<Vec<f64>> =
            (0..9).map(|i| vec![(i as f64).sin(), (i as f64).cos()]).collect();
        let d = Dendrogram::ward(&data);
        let mut order = d.leaf_order();
        assert_eq!(order.len(), 9);
        order.sort_unstable();
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_order_keeps_groups_contiguous() {
        let data = vec![
            vec![0.0, 0.0],
            vec![100.0, 0.0],
            vec![0.2, 0.0],
            vec![100.4, 0.0],
            vec![0.4, 0.0],
        ];
        let d = Dendrogram::ward(&data);
        let order = d.leaf_order();
        // The two members of the far group (1 and 3) must be adjacent.
        let p1 = order.iter().position(|&x| x == 1).unwrap();
        let p3 = order.iter().position(|&x| x == 3).unwrap();
        assert_eq!(p1.abs_diff(p3), 1);
    }

    #[test]
    fn single_observation() {
        let d = Dendrogram::ward(&[vec![1.0, 2.0]]);
        assert_eq!(d.n_leaves(), 1);
        assert!(d.merges().is_empty());
        assert_eq!(d.cut(1), vec![0]);
        assert_eq!(d.leaf_order(), vec![0]);
    }

    #[test]
    fn identical_points_merge_at_zero_height() {
        let data = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![9.0, 9.0]];
        let d = Dendrogram::ward(&data);
        assert!(d.merges()[0].height.abs() < 1e-12);
    }
}

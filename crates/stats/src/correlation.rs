//! Correlation measures used by the trend and explanatory analyses.

use crate::descriptive::{mean, std_dev};

/// Pearson product-moment correlation. Returns `NaN` for inputs shorter
/// than 2 or with zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must be the same length");
    if xs.len() < 2 {
        return f64::NAN;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let (sx, sy) = (std_dev(xs), std_dev(ys));
    if sx == 0.0 || sy == 0.0 || !sx.is_finite() || !sy.is_finite() {
        return f64::NAN;
    }
    let cov: f64 =
        xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / (xs.len() - 1) as f64;
    cov / (sx * sy)
}

/// Ranks with average tie handling (the Spearman convention).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average rank for the tie block [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over ranks, average-tie rule).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must be the same length");
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_checked_pearson() {
        // Classic small example.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 5.0, 4.0, 5.0];
        let r = pearson(&xs, &ys);
        assert!((r - 0.7746).abs() < 1e-3, "r = {r}");
    }

    #[test]
    fn spearman_is_monotonicity_not_linearity() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        // Exponential is nonlinear: Pearson < 1, Spearman = 1.
        assert!(pearson(&xs, &ys) < 0.95);
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan(), "zero variance");
        assert!(spearman(&[1.0], &[1.0]).is_nan());
    }

    #[test]
    fn correlation_is_symmetric_and_bounded() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let ys = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        let a = pearson(&xs, &ys);
        let b = pearson(&ys, &xs);
        assert!((a - b).abs() < 1e-12);
        assert!((-1.0..=1.0).contains(&a));
    }
}

//! Descriptive statistics and standardization.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (Bessel-corrected, divisor `n-1`).
///
/// Returns `NaN` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated quantile, `q` in `[0, 1]` (type-7, the R/NumPy
/// default). Returns `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Standardize to zero mean and unit (sample) standard deviation, as App. E
/// does before fitting the explanatory regression.
///
/// A constant column (zero variance) is mapped to all-zeros rather than
/// NaNs, so degenerate features stay harmless.
pub fn standardize(xs: &[f64]) -> Vec<f64> {
    let m = mean(xs);
    let s = std_dev(xs);
    if !s.is_finite() || s == 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_hand_checked() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32; sample variance = 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn standardize_zero_mean_unit_sd() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = standardize(&xs);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_column_is_zeros() {
        let z = standardize(&[3.0, 3.0, 3.0]);
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn quantile_out_of_range_is_nan() {
        assert!(quantile(&[1.0, 2.0], 1.5).is_nan());
        assert!(quantile(&[1.0, 2.0], -0.1).is_nan());
    }
}

//! The Herfindahl–Hirschman Index (HHI), the market-concentration measure
//! the paper uses to quantify diversification of hosting networks (§7.2,
//! Fig. 11): sum of squared market shares, 0 (perfectly diversified) to 1
//! (a single network serves everything).

/// HHI from market *shares* (fractions summing to ~1).
///
/// ```
/// use govhost_stats::hhi::hhi;
/// assert!((hhi(&[0.5, 0.3, 0.2]) - 0.38).abs() < 1e-12);
/// ```
///
/// Shares are renormalized defensively so rounding in the caller cannot
/// push the index above 1. Returns `NaN` for an empty or all-zero input.
pub fn hhi(shares: &[f64]) -> f64 {
    let total: f64 = shares.iter().sum();
    if shares.is_empty() || total <= 0.0 {
        return f64::NAN;
    }
    shares.iter().map(|s| (s / total) * (s / total)).sum()
}

/// HHI from raw counts (e.g. URLs or bytes per network).
pub fn hhi_from_counts(counts: &[u64]) -> f64 {
    let shares: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    hhi(&shares)
}

/// Normalized HHI mapping the `[1/n, 1]` range onto `[0, 1]`, useful when
/// comparing markets with different numbers of participants. For a single
/// participant the index is defined as 1.
pub fn normalized_hhi(shares: &[f64]) -> f64 {
    let n = shares.iter().filter(|s| **s > 0.0).count();
    if n <= 1 {
        return if n == 1 { 1.0 } else { f64::NAN };
    }
    let h = hhi(shares);
    let n = n as f64;
    (h - 1.0 / n) / (1.0 - 1.0 / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monopoly_is_one() {
        assert!((hhi(&[1.0]) - 1.0).abs() < 1e-12);
        assert!((hhi_from_counts(&[42]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_market_is_one_over_n() {
        let shares = vec![0.25; 4];
        assert!((hhi(&shares) - 0.25).abs() < 1e-12);
        assert!((hhi_from_counts(&[10, 10, 10, 10]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hand_checked_value() {
        // Shares 0.5, 0.3, 0.2 -> 0.25 + 0.09 + 0.04 = 0.38.
        assert!((hhi(&[0.5, 0.3, 0.2]) - 0.38).abs() < 1e-12);
    }

    #[test]
    fn renormalizes_unnormalized_shares() {
        assert!((hhi(&[5.0, 3.0, 2.0]) - 0.38).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(hhi(&[]).is_nan());
        assert!(hhi(&[0.0, 0.0]).is_nan());
    }

    #[test]
    fn normalized_bounds() {
        assert!((normalized_hhi(&[1.0]) - 1.0).abs() < 1e-12);
        assert!(normalized_hhi(&[0.5, 0.5]).abs() < 1e-12);
        let h = normalized_hhi(&[0.7, 0.2, 0.1]);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn zero_shares_ignored_in_normalization() {
        // Zeros do not count as participants.
        assert!(normalized_hhi(&[1.0, 0.0, 0.0]).is_finite());
        assert!((normalized_hhi(&[1.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}

#![warn(missing_docs)]
//! # govhost-stats
//!
//! Statistics needed by the paper's analyses, implemented from scratch:
//!
//! - descriptive statistics and z-score standardization (App. E),
//! - the Herfindahl–Hirschman Index (§7.2, Fig. 11),
//! - hierarchical agglomerative clustering with Ward linkage (§5.3, Fig. 5),
//! - ordinary least squares with t-based confidence intervals, p-values and
//!   Variance Inflation Factors (App. E, Fig. 12, Table 7),
//! - the special functions (ln-gamma, regularized incomplete beta) backing
//!   the Student-t distribution used for inference.
//!
//! Everything is pure and deterministic.

pub mod boxplot;
pub mod cluster;
pub mod correlation;
pub mod descriptive;
pub mod hhi;
pub mod linalg;
pub mod ols;
pub mod special;

pub use boxplot::FiveNumberSummary;
pub use cluster::{Dendrogram, Merge};
pub use correlation::{pearson, spearman};
pub use descriptive::{mean, median, quantile, standardize, std_dev, variance};
pub use hhi::{hhi, hhi_from_counts, normalized_hhi};
pub use linalg::Matrix;
pub use ols::{OlsFit, Vif};

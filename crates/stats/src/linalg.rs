//! Small dense-matrix linear algebra: just enough for OLS (normal
//! equations solved by Gaussian elimination with partial pivoting).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Self { rows: r, cols: c, data: rows.iter().flatten().copied().collect() }
    }

    /// Build a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A column copied into a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Solve `self * x = b` for square `self` via Gaussian elimination with
    /// partial pivoting. Returns `None` if the system is singular (pivot
    /// below `1e-12` after scaling).
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.rows, self.rows, "rhs row mismatch");
        let n = self.rows;
        let m = b.cols;
        // Augmented working copy.
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&i, &j| {
                    a[(i, col)].abs().partial_cmp(&a[(j, col)].abs()).expect("finite pivots")
                })
                .expect("nonempty range");
            if a[(pivot_row, col)].abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = a[(col, c)];
                    a[(col, c)] = a[(pivot_row, c)];
                    a[(pivot_row, c)] = tmp;
                }
                for c in 0..m {
                    let tmp = x[(col, c)];
                    x[(col, c)] = x[(pivot_row, c)];
                    x[(pivot_row, c)] = tmp;
                }
            }
            let pivot = a[(col, col)];
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[(r, c)] -= factor * a[(col, c)];
                }
                for c in 0..m {
                    x[(r, c)] -= factor * x[(col, c)];
                }
            }
        }
        for r in 0..n {
            let pivot = a[(r, r)];
            for c in 0..m {
                x[(r, c)] /= pivot;
            }
        }
        Some(x)
    }

    /// Matrix inverse via [`Self::solve`] against the identity.
    pub fn inverse(&self) -> Option<Matrix> {
        self.solve(&Matrix::identity(self.rows))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_and_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.rows(), 2);
        assert_eq!(at.cols(), 3);
        let ata = at.matmul(&a);
        assert_eq!(ata[(0, 0)], 35.0);
        assert_eq!(ata[(0, 1)], 44.0);
        assert_eq!(ata[(1, 1)], 56.0);
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let b = Matrix::column(&[5.0, 1.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the leading position forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::column(&[3.0, 7.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 7.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&Matrix::column(&[1.0, 2.0])).is_none());
        assert!(a.inverse().is_none());
    }

    #[test]
    fn inverse_round_trips() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let id = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

//! Ordinary least squares with classical inference, plus Variance Inflation
//! Factors — everything App. E needs for the explanatory model of offshore
//! hosting (Fig. 12, Table 7).

use crate::linalg::Matrix;
use crate::special::{student_t_quantile, student_t_two_sided_p};

/// One fitted coefficient with its inference artifacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficient {
    /// Point estimate.
    pub estimate: f64,
    /// Standard error.
    pub std_error: f64,
    /// t statistic (`estimate / std_error`).
    pub t_value: f64,
    /// Two-sided p-value under `t(n - p)`.
    pub p_value: f64,
    /// Lower bound of the confidence interval.
    pub ci_low: f64,
    /// Upper bound of the confidence interval.
    pub ci_high: f64,
}

impl Coefficient {
    /// Whether the coefficient is significant at the given level (its
    /// p-value is below `alpha`).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// A fitted OLS model `y = X·β + ε`.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Per-column coefficient results (same order as the design matrix).
    pub coefficients: Vec<Coefficient>,
    /// Residuals `y - X·β̂`.
    pub residuals: Vec<f64>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Residual degrees of freedom (`n - p`).
    pub df_resid: usize,
}

impl OlsFit {
    /// Fit OLS of `y` on the columns of `x` (pass an explicit intercept
    /// column if one is wanted), with `(1 - alpha)` confidence intervals.
    ///
    /// ```
    /// use govhost_stats::{Matrix, OlsFit};
    /// // y = 1 + 2x, exactly.
    /// let x = Matrix::from_rows(&(0..10).map(|i| vec![1.0, i as f64]).collect::<Vec<_>>());
    /// let y: Vec<f64> = (0..10).map(|i| 1.0 + 2.0 * i as f64).collect();
    /// let fit = OlsFit::fit(&x, &y).unwrap();
    /// assert!((fit.coefficients[1].estimate - 2.0).abs() < 1e-9);
    /// ```
    ///
    /// Returns `None` when `X'X` is singular (collinear design) or there
    /// are no residual degrees of freedom.
    ///
    /// Telemetry: `stats.ols_fits{outcome=ok|singular|shape}` counts fit
    /// attempts; `stats.ols_observations` is a histogram of sample sizes.
    pub fn fit_with_alpha(x: &Matrix, y: &[f64], alpha: f64) -> Option<OlsFit> {
        let fit = Self::fit_with_alpha_inner(x, y, alpha);
        let outcome = match &fit {
            Some(_) => "ok",
            None if x.rows() != y.len() || x.rows() <= x.cols() => "shape",
            None => "singular",
        };
        govhost_obs::counter_add("stats.ols_fits", &[("outcome", outcome)], 1);
        govhost_obs::observe("stats.ols_observations", &[], x.rows() as u64);
        fit
    }

    fn fit_with_alpha_inner(x: &Matrix, y: &[f64], alpha: f64) -> Option<OlsFit> {
        let n = x.rows();
        let p = x.cols();
        if n != y.len() || n <= p {
            return None;
        }
        let xt = x.transpose();
        let xtx = xt.matmul(x);
        let xty = xt.matmul(&Matrix::column(y));
        let beta = xtx.solve(&xty)?;
        let xtx_inv = xtx.inverse()?;

        // Residuals and error variance.
        let fitted = x.matmul(&beta);
        let residuals: Vec<f64> = (0..n).map(|i| y[i] - fitted[(i, 0)]).collect();
        let rss: f64 = residuals.iter().map(|r| r * r).sum();
        let df = n - p;
        let sigma2 = rss / df as f64;

        let y_mean = crate::descriptive::mean(y);
        let tss: f64 = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum();
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { f64::NAN };
        let adj_r_squared = if tss > 0.0 {
            1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / df as f64
        } else {
            f64::NAN
        };

        let t_crit = student_t_quantile(1.0 - alpha / 2.0, df as f64);
        let coefficients = (0..p)
            .map(|j| {
                let estimate = beta[(j, 0)];
                let std_error = (sigma2 * xtx_inv[(j, j)]).max(0.0).sqrt();
                let t_value = if std_error > 0.0 { estimate / std_error } else { f64::INFINITY };
                Coefficient {
                    estimate,
                    std_error,
                    t_value,
                    p_value: student_t_two_sided_p(t_value, df as f64),
                    ci_low: estimate - t_crit * std_error,
                    ci_high: estimate + t_crit * std_error,
                }
            })
            .collect();

        Some(OlsFit { coefficients, residuals, r_squared, adj_r_squared, df_resid: df })
    }

    /// Fit with the conventional 95% confidence intervals (App. E reports
    /// 95% CIs in Fig. 12).
    pub fn fit(x: &Matrix, y: &[f64]) -> Option<OlsFit> {
        Self::fit_with_alpha(x, y, 0.05)
    }
}

/// Variance Inflation Factors for a design matrix.
#[derive(Debug, Clone)]
pub struct Vif {
    /// One VIF per column of the design matrix handed to [`Vif::compute`].
    pub factors: Vec<f64>,
}

impl Vif {
    /// Compute the VIF of each column of `x` by regressing it on all other
    /// columns (with an intercept): `VIF_j = 1 / (1 - R²_j)`.
    ///
    /// Columns that are perfectly collinear get `f64::INFINITY`.
    pub fn compute(x: &Matrix) -> Vif {
        let n = x.rows();
        let p = x.cols();
        let mut factors = Vec::with_capacity(p);
        for j in 0..p {
            let target = x.col(j);
            // Design: intercept + every other column.
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|r| {
                    let mut row = Vec::with_capacity(p);
                    row.push(1.0);
                    for c in 0..p {
                        if c != j {
                            row.push(x[(r, c)]);
                        }
                    }
                    row
                })
                .collect();
            let design = Matrix::from_rows(&rows);
            match OlsFit::fit(&design, &target) {
                Some(fit) if fit.r_squared.is_finite() && fit.r_squared < 1.0 - 1e-12 => {
                    factors.push(1.0 / (1.0 - fit.r_squared));
                }
                Some(_) => factors.push(f64::INFINITY),
                None => factors.push(f64::INFINITY),
            }
        }
        Vif { factors }
    }

    /// The conventional "multicollinearity is a concern" threshold check
    /// the paper applies (all VIFs under 10 — Table 7 discussion).
    pub fn all_below(&self, threshold: f64) -> bool {
        self.factors.iter().all(|f| *f < threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design_with_intercept(cols: &[&[f64]]) -> Matrix {
        let n = cols[0].len();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row = vec![1.0];
                row.extend(cols.iter().map(|c| c[i]));
                row
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 + 3x, no noise.
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 + 3.0 * v).collect();
        let fit = OlsFit::fit(&design_with_intercept(&[&x]), &y).unwrap();
        assert!((fit.coefficients[0].estimate - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1].estimate - 3.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!(fit.residuals.iter().all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn two_predictors_hand_checked() {
        // y = 1 + 2a - 0.5b exactly.
        let a: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 1.5, 2.5];
        let b: Vec<f64> = vec![1.0, 0.0, 3.0, 1.0, 2.0, 5.0, 2.0, 0.5];
        let y: Vec<f64> =
            a.iter().zip(&b).map(|(ai, bi)| 1.0 + 2.0 * ai - 0.5 * bi).collect();
        let fit = OlsFit::fit(&design_with_intercept(&[&a, &b]), &y).unwrap();
        assert!((fit.coefficients[0].estimate - 1.0).abs() < 1e-9);
        assert!((fit.coefficients[1].estimate - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[2].estimate + 0.5).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_ci_covers_truth() {
        // Deterministic pseudo-noise; slope 1.5, intercept 4.
        let x: Vec<f64> = (0..60).map(|i| i as f64 / 3.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 4.0 + 1.5 * v + ((i as f64 * 2.39).sin()) * 0.6)
            .collect();
        let fit = OlsFit::fit(&design_with_intercept(&[&x]), &y).unwrap();
        let slope = fit.coefficients[1];
        assert!(slope.ci_low < 1.5 && 1.5 < slope.ci_high);
        assert!(slope.significant_at(0.001));
        assert!(fit.r_squared > 0.98);
    }

    #[test]
    fn irrelevant_predictor_is_insignificant() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        // Noise-like second predictor, unrelated to y.
        let z: Vec<f64> = (0..40).map(|i| ((i * 37 % 17) as f64) - 8.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 1.0 + 0.8 * v + ((i as f64 * 1.7).cos()) * 0.5)
            .collect();
        let fit = OlsFit::fit(&design_with_intercept(&[&x, &z]), &y).unwrap();
        assert!(!fit.coefficients[2].significant_at(0.05));
        assert!(fit.coefficients[1].significant_at(0.001));
    }

    #[test]
    fn singular_design_returns_none() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let x2 = x.clone(); // perfectly collinear with x
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert!(OlsFit::fit(&design_with_intercept(&[&x, &x2]), &y).is_none());
    }

    #[test]
    fn underdetermined_returns_none() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 3.0]]);
        assert!(OlsFit::fit(&x, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn vif_orthogonal_predictors_near_one() {
        // Two orthogonal-ish columns.
        let n = 32;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 * 0.5).sin(), (i as f64 * 0.5).cos()])
            .collect();
        let vif = Vif::compute(&Matrix::from_rows(&rows));
        assert!(vif.factors.iter().all(|f| *f < 1.3), "{:?}", vif.factors);
        assert!(vif.all_below(10.0));
    }

    #[test]
    fn vif_detects_collinearity() {
        let n = 24;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = i as f64;
                let b = 2.0 * a + 0.01 * ((i as f64 * 3.3).sin()); // nearly collinear
                let c = (i as f64 * 1.1).cos();
                vec![a, b, c]
            })
            .collect();
        let vif = Vif::compute(&Matrix::from_rows(&rows));
        assert!(vif.factors[0] > 100.0);
        assert!(vif.factors[1] > 100.0);
        assert!(vif.factors[2] < 10.0);
        assert!(!vif.all_below(10.0));
    }

    #[test]
    fn vif_perfect_collinearity_is_infinite() {
        let rows: Vec<Vec<f64>> =
            (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let vif = Vif::compute(&Matrix::from_rows(&rows));
        assert!(vif.factors.iter().all(|f| f.is_infinite()));
    }
}

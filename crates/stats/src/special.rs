//! Special functions backing the Student-t and normal distributions.
//!
//! Implemented from standard numerical recipes: Lanczos ln-gamma,
//! continued-fraction regularized incomplete beta, and an erf-based normal
//! CDF. Accuracy is more than sufficient for 95% confidence intervals and
//! p-values on datasets of tens of observations.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Valid for `x > 0`.
#[allow(clippy::excessive_precision)] // published Lanczos coefficients
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued-fraction method.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    // `<=` (not `<`) so the boundary case cannot recurse onto itself.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - incomplete_beta(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t statistic with `df` degrees of freedom.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    2.0 * (1.0 - student_t_cdf(t.abs(), df))
}

/// Inverse CDF (quantile) of the Student-t distribution, by bisection on
/// the CDF. `p` must be in `(0, 1)`.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    let (mut lo, mut hi) = (-1e3, 1e3);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Error function, Abramowitz & Stegun 7.1.26 style rational approximation
/// refined with one more term set (max error ~1.5e-7, fine for display).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetric_case() {
        // I_{0.5}(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 2.5, 7.0] {
            assert!((incomplete_beta(a, a, 0.5) - 0.5).abs() < 1e-10, "a = {a}");
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        let p = student_t_cdf(1.3, 9.0);
        let q = student_t_cdf(-1.3, 9.0);
        assert!((p + q - 1.0).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_known_values() {
        // With df=10, P(T < 1.812) ~ 0.95 (1.812 is the 95% one-sided point).
        assert!((student_t_cdf(1.812, 10.0) - 0.95).abs() < 1e-3);
        // With df=1 (Cauchy), P(T < 1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for df in [3.0, 10.0, 55.0] {
            for p in [0.025, 0.25, 0.75, 0.975] {
                let t = student_t_quantile(p, df);
                assert!((student_t_cdf(t, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn t_quantile_97_5_matches_tables() {
        // Classic t-table values for two-sided 95% CIs.
        assert!((student_t_quantile(0.975, 10.0) - 2.228).abs() < 2e-3);
        assert!((student_t_quantile(0.975, 30.0) - 2.042).abs() < 2e-3);
        assert!((student_t_quantile(0.975, 120.0) - 1.980).abs() < 2e-3);
    }

    #[test]
    fn two_sided_p_values() {
        // t = 2.228 at df = 10 is exactly the 5% two-sided threshold.
        assert!((student_t_two_sided_p(2.228, 10.0) - 0.05).abs() < 1e-3);
        assert!(student_t_two_sided_p(0.0, 10.0) > 0.999);
    }

    #[test]
    fn erf_and_normal_cdf() {
        assert!(erf(0.0).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }
}

//! Property tests for the statistics kernels, on the in-repo harness.

use govhost_harness::{gens, prop_assert, prop_assert_eq, Config};
use govhost_stats::boxplot::FiveNumberSummary;
use govhost_stats::cluster::Dendrogram;
use govhost_stats::descriptive::{mean, quantile, standardize, std_dev};
use govhost_stats::hhi::{hhi, hhi_from_counts};
use govhost_stats::linalg::Matrix;
use govhost_stats::ols::OlsFit;

const REGRESSIONS: &str = "tests/regressions/prop_stats.txt";

fn cfg(name: &str) -> Config {
    Config::new(name).cases(256).regressions(REGRESSIONS)
}

#[test]
fn hhi_is_bounded() {
    let shares = gens::vec(gens::f64_range(0.0, 100.0), 1, 49);
    cfg("hhi_is_bounded").run(&shares, |shares| {
        let h = hhi(shares);
        if h.is_nan() {
            // All-zero input.
            prop_assert!(shares.iter().sum::<f64>() == 0.0);
        } else {
            let n = shares.iter().filter(|s| **s > 0.0).count() as f64;
            prop_assert!(h <= 1.0 + 1e-9);
            prop_assert!(h >= 1.0 / n - 1e-9, "HHI {h} below 1/n {}", 1.0 / n);
        }
        Ok(())
    });
}

#[test]
fn hhi_is_scale_invariant() {
    let inputs = gens::vec(gens::u64_range(1, 10_000), 1, 29).zip(gens::u64_range(2, 10));
    cfg("hhi_is_scale_invariant").run(&inputs, |(counts, k)| {
        let scaled: Vec<u64> = counts.iter().map(|c| c * k).collect();
        let a = hhi_from_counts(counts);
        let b = hhi_from_counts(&scaled);
        prop_assert!((a - b).abs() < 1e-9);
        Ok(())
    });
}

#[test]
fn ward_heights_monotone_and_cut_consistent() {
    let data = gens::vec(gens::vec(gens::f64_range(-10.0, 10.0), 3, 3), 2, 24);
    cfg("ward_heights_monotone_and_cut_consistent").run(&data, |data| {
        let d = Dendrogram::ward(data);
        let heights = d.heights();
        for w in heights.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "heights must be monotone: {heights:?}");
        }
        // Cutting into n clusters separates everything; into 1, nothing.
        let n = data.len();
        prop_assert_eq!(d.cut(1), vec![0; n]);
        let all = d.cut(n);
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        prop_assert_eq!(distinct.len(), n);
        // Every cut returns exactly k distinct labels.
        for k in 1..=n {
            let labels = d.cut(k);
            let distinct: std::collections::HashSet<_> = labels.iter().collect();
            prop_assert_eq!(distinct.len(), k);
        }
        Ok(())
    });
}

#[test]
fn leaf_order_is_always_a_permutation() {
    let data = gens::vec(gens::vec(gens::f64_range(-5.0, 5.0), 2, 2), 1, 19);
    cfg("leaf_order_is_always_a_permutation").run(&data, |data| {
        let d = Dendrogram::ward(data);
        let mut order = d.leaf_order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..data.len()).collect::<Vec<_>>());
        Ok(())
    });
}

#[test]
fn ols_recovers_planted_coefficients() {
    let coeff = || gens::f64_range(-5.0, 5.0);
    let point = gens::f64_range(-10.0, 10.0).zip(gens::f64_range(-10.0, 10.0));
    let inputs = gens::zip4(coeff(), coeff(), coeff(), gens::vec(point, 10, 59));
    cfg("ols_recovers_planted_coefficients").run(&inputs, |(intercept, slope1, slope2, xs)| {
        // Noise-free linear data must be recovered exactly (when the
        // design is well-conditioned).
        let rows: Vec<Vec<f64>> = xs.iter().map(|(a, b)| vec![1.0, *a, *b]).collect();
        let y: Vec<f64> =
            xs.iter().map(|(a, b)| intercept + slope1 * a + slope2 * b).collect();
        let design = Matrix::from_rows(&rows);
        if let Some(fit) = OlsFit::fit(&design, &y) {
            prop_assert!((fit.coefficients[0].estimate - intercept).abs() < 1e-6);
            prop_assert!((fit.coefficients[1].estimate - slope1).abs() < 1e-6);
            prop_assert!((fit.coefficients[2].estimate - slope2).abs() < 1e-6);
            prop_assert!(fit.residuals.iter().all(|r| r.abs() < 1e-6));
        }
        Ok(())
    });
}

#[test]
fn standardize_properties() {
    let xs = gens::vec(gens::f64_range(-1e6, 1e6), 2, 99);
    cfg("standardize_properties").run(&xs, |xs| {
        let z = standardize(xs);
        prop_assert_eq!(z.len(), xs.len());
        let m = mean(&z);
        prop_assert!(m.abs() < 1e-6, "mean {m}");
        let s = std_dev(&z);
        prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-6, "sd {s}");
        Ok(())
    });
}

#[test]
fn quantiles_are_monotone_and_within_range() {
    let inputs = gens::vec(gens::f64_range(-1e3, 1e3), 1, 79)
        .zip(gens::vec(gens::f64_unit(), 2, 5));
    cfg("quantiles_are_monotone_and_within_range").run(&inputs, |(xs, qs)| {
        let mut qs = qs.clone();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for q in qs {
            let v = quantile(xs, q);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= prev - 1e-9, "quantiles must be monotone");
            prev = v;
        }
        Ok(())
    });
}

#[test]
fn five_number_summary_is_ordered() {
    let xs = gens::vec(gens::f64_range(0.0, 1.0), 1, 99);
    cfg("five_number_summary_is_ordered").run(&xs, |xs| {
        let s = FiveNumberSummary::of(xs).expect("nonempty");
        prop_assert!(s.min <= s.whisker_low + 1e-12);
        prop_assert!(s.whisker_low <= s.q1 + 1e-12);
        prop_assert!(s.q1 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q3 + 1e-12);
        prop_assert!(s.q3 <= s.whisker_high + 1e-12);
        prop_assert!(s.whisker_high <= s.max + 1e-12);
        prop_assert_eq!(s.n, xs.len());
        Ok(())
    });
}

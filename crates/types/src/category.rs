//! Hosting categories used by the paper's analyses.

use std::fmt;

/// The kind of organization operating a network (an AS) in the simulated
/// world. This is *ground truth* in the substrate; the measurement pipeline
/// must recover it from WHOIS/PeeringDB/search evidence (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OrgKind {
    /// A network used exclusively by government institutions (ministries,
    /// agencies, national data centers).
    Government,
    /// A state-owned enterprise's network (>50% federal ownership, per the
    /// IMF guideline the paper follows).
    StateOwnedEnterprise,
    /// A privately-held hosting provider or ISP operating in one country.
    LocalProvider,
    /// A provider registered outside the country it serves, but whose
    /// footprint stays within one continent.
    RegionalProvider,
    /// A provider serving governments across multiple continents
    /// (Cloudflare, AWS, Azure, ...).
    GlobalProvider,
}

impl OrgKind {
    /// Whether the operator is the state itself (government or SOE).
    pub fn is_state(&self) -> bool {
        matches!(self, OrgKind::Government | OrgKind::StateOwnedEnterprise)
    }
}

/// The paper's four hosting categories (§5.1, Fig. 2): who serves a
/// government URL, as seen from the government's own country.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProviderCategory {
    /// Government or state-owned enterprise infrastructure ("on-premises").
    GovtSoe,
    /// Third-party provider registered in the same country it serves.
    ThirdPartyLocal,
    /// Third-party provider registered abroad with a single-continent
    /// footprint.
    ThirdPartyRegional,
    /// Third-party provider with a multi-continent footprint.
    ThirdPartyGlobal,
}

impl ProviderCategory {
    /// All categories in the paper's display order (Fig. 2).
    pub const ALL: [ProviderCategory; 4] = [
        ProviderCategory::GovtSoe,
        ProviderCategory::ThirdPartyLocal,
        ProviderCategory::ThirdPartyGlobal,
        ProviderCategory::ThirdPartyRegional,
    ];

    /// Short label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ProviderCategory::GovtSoe => "Govt&SOE",
            ProviderCategory::ThirdPartyLocal => "3P Local",
            ProviderCategory::ThirdPartyRegional => "3P Regional",
            ProviderCategory::ThirdPartyGlobal => "3P Global",
        }
    }

    /// Whether this is any third-party category.
    pub fn is_third_party(&self) -> bool {
        !matches!(self, ProviderCategory::GovtSoe)
    }

    /// Stable index (0..4) for fixed-size share arrays, following [`Self::ALL`].
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("category is in ALL")
    }
}

impl fmt::Display for ProviderCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Hosting categories for *non-government* popular sites (App. D), where
/// "on-premises" becomes "self-hosting" and a foreign single-country
/// provider is "foreign" rather than "regional".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TopsiteCategory {
    /// The site serves its own content (CNAME 2LD matches site 2LD, or the
    /// CNAME 2LD appears in the site's certificate SANs).
    SelfHosting,
    /// Multi-continent third-party provider.
    Global,
    /// Provider registered in the site's own country.
    Local,
    /// Provider registered abroad.
    Foreign,
}

impl TopsiteCategory {
    /// All categories in the paper's display order (Fig. 3).
    pub const ALL: [TopsiteCategory; 4] = [
        TopsiteCategory::SelfHosting,
        TopsiteCategory::Global,
        TopsiteCategory::Local,
        TopsiteCategory::Foreign,
    ];

    /// Short label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            TopsiteCategory::SelfHosting => "Self-Hosting",
            TopsiteCategory::Global => "3P Global",
            TopsiteCategory::Local => "3P Local",
            TopsiteCategory::Foreign => "3P Regional",
        }
    }

    /// Stable index (0..4) following [`Self::ALL`].
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("category is in ALL")
    }
}

impl fmt::Display for TopsiteCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_kinds() {
        assert!(OrgKind::Government.is_state());
        assert!(OrgKind::StateOwnedEnterprise.is_state());
        assert!(!OrgKind::LocalProvider.is_state());
        assert!(!OrgKind::GlobalProvider.is_state());
    }

    #[test]
    fn category_indices_match_all_order() {
        for (i, c) in ProviderCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in TopsiteCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn third_party_split() {
        assert!(!ProviderCategory::GovtSoe.is_third_party());
        assert!(ProviderCategory::ThirdPartyLocal.is_third_party());
        assert!(ProviderCategory::ThirdPartyRegional.is_third_party());
        assert!(ProviderCategory::ThirdPartyGlobal.is_third_party());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProviderCategory::GovtSoe.label(), "Govt&SOE");
        assert_eq!(TopsiteCategory::SelfHosting.label(), "Self-Hosting");
    }
}

//! ISO 3166-1 alpha-2 country codes.

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;

/// An ISO 3166-1 alpha-2 country code (e.g. `US`, `AR`, `NC`).
///
/// Stored as two uppercase ASCII letters; `Copy` and cheap to compare, so it
/// is used pervasively as a map key throughout the workspace.
///
/// ```
/// use govhost_types::CountryCode;
/// let us: CountryCode = "us".parse().unwrap();
/// assert_eq!(us.as_str(), "US");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Construct from two ASCII letters; lowercase input is uppercased.
    ///
    /// Returns an error if either byte is not an ASCII letter.
    pub fn new(a: u8, b: u8) -> Result<Self, ParseError> {
        if a.is_ascii_alphabetic() && b.is_ascii_alphabetic() {
            Ok(Self([a.to_ascii_uppercase(), b.to_ascii_uppercase()]))
        } else {
            Err(ParseError::new(
                "CountryCode",
                String::from_utf8_lossy(&[a, b]).into_owned(),
                "must be two ASCII letters",
            ))
        }
    }

    /// Infallible construction from a two-letter literal.
    ///
    /// # Panics
    /// Panics if `s` is not exactly two ASCII letters. Intended for static
    /// tables of known codes; use [`FromStr`] for untrusted input.
    pub const fn literal(s: &str) -> Self {
        let b = s.as_bytes();
        assert!(b.len() == 2, "country code literal must be two bytes");
        assert!(b[0].is_ascii_uppercase() && b[1].is_ascii_uppercase());
        Self([b[0], b[1]])
    }

    /// The code as an uppercase string slice.
    pub fn as_str(&self) -> &str {
        // Invariant: constructed from ASCII letters only.
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }
}

impl FromStr for CountryCode {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let b = s.as_bytes();
        if b.len() != 2 {
            return Err(ParseError::new("CountryCode", s, "must be exactly two letters"));
        }
        Self::new(b[0], b[1])
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CountryCode({})", self.as_str())
    }
}

/// Convenience macro producing a `CountryCode` from an uppercase literal.
///
/// ```
/// use govhost_types::cc;
/// assert_eq!(cc!("US").as_str(), "US");
/// ```
#[macro_export]
macro_rules! cc {
    ($s:literal) => {
        $crate::country::CountryCode::literal($s)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_uppercases() {
        let c: CountryCode = "ar".parse().unwrap();
        assert_eq!(c.as_str(), "AR");
        assert_eq!(c, "AR".parse().unwrap());
    }

    #[test]
    fn rejects_wrong_length() {
        assert!("USA".parse::<CountryCode>().is_err());
        assert!("U".parse::<CountryCode>().is_err());
        assert!("".parse::<CountryCode>().is_err());
    }

    #[test]
    fn rejects_non_letters() {
        assert!("1A".parse::<CountryCode>().is_err());
        assert!("A ".parse::<CountryCode>().is_err());
    }

    #[test]
    fn literal_macro_works() {
        assert_eq!(cc!("NC").to_string(), "NC");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let ar = cc!("AR");
        let br = cc!("BR");
        assert!(ar < br);
    }

    #[test]
    #[should_panic]
    fn literal_rejects_lowercase() {
        let _ = CountryCode::literal("us");
    }
}

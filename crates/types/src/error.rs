//! Parse errors for the vocabulary types.

use std::fmt;

/// Error returned when parsing one of the vocabulary types from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    kind: &'static str,
    input: String,
    reason: &'static str,
}

impl ParseError {
    /// Create a parse error for a value of type `kind` (e.g. `"CountryCode"`).
    pub fn new(kind: &'static str, input: impl Into<String>, reason: &'static str) -> Self {
        Self { kind, input: input.into(), reason }
    }

    /// The type that failed to parse.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The offending input (possibly truncated by the caller).
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Human-readable reason for the failure.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {:?}: {}", self.kind, self.input, self.reason)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_input_and_reason() {
        let e = ParseError::new("CountryCode", "usa", "must be two letters");
        let s = e.to_string();
        assert!(s.contains("CountryCode"));
        assert!(s.contains("usa"));
        assert!(s.contains("two letters"));
    }

    #[test]
    fn accessors_round_trip() {
        let e = ParseError::new("Url", "::", "missing scheme");
        assert_eq!(e.kind(), "Url");
        assert_eq!(e.input(), "::");
        assert_eq!(e.reason(), "missing scheme");
    }
}

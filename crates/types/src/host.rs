//! Hostnames with label access and registrable-domain ("2LD") extraction.
//!
//! The paper's methodology repeatedly needs the *registrable domain* of a
//! hostname: the domain-matching classification step (§3.3) compares
//! hostnames of internal pages against seed sites, and the topsites
//! self-hosting heuristic (App. D) compares the 2LD of a CNAME target with
//! the site's own 2LD. Real-world 2LD extraction needs a public-suffix
//! list; we embed the subset of multi-label suffixes that occur in the
//! simulated world.

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Multi-label public suffixes known to the simulator. A hostname ending in
/// one of these keeps one extra label in its registrable domain (e.g. the
/// registrable domain of `www.energia-argentina.com.ar` is
/// `energia-argentina.com.ar`).
///
/// This intentionally covers the government and commercial suffixes used by
/// the 61-country world rather than the full Mozilla PSL.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    // Commercial / generic second-level registrations.
    "com.ar", "com.br", "com.mx", "com.bo", "com.py", "com.uy", "com.co", "com.au", "com.nz",
    "com.sg", "com.my", "com.hk", "com.tw", "com.cn", "com.vn", "com.eg", "com.tr", "com.ua",
    "co.uk", "org.uk", "co.nz", "co.za", "co.jp", "co.kr", "co.id", "co.in", "co.th", "co.il",
    "net.au", "org.au", "org.br", "org.ar", "net.nz", "or.jp", "ne.jp", "ac.uk",
    // Government second-level registrations (Table 1 variants under ccTLDs).
    "gov.ar", "gov.br", "gov.uk", "gov.au", "gov.nz", "gov.za", "gov.in", "gov.bd", "gov.pk",
    "gov.cn", "gov.vn", "gov.my", "gov.sg", "gov.hk", "gov.tw", "gov.tr", "gov.ua", "gov.kz",
    "gov.rs", "gov.gr", "gov.il", "gov.eg", "gov.ng", "gov.py", "gov.co", "gov.it", "gov.pt",
    "gov.pl", "gov.hu", "gov.cz", "gov.ro", "gov.bg", "gov.md", "gov.ge", "gov.al", "gov.ba",
    "gov.lv", "gov.ee", "gov.ma", "gov.dz", "gov.ae", "gov.th", "gov.id",
    "gob.mx", "gob.ar", "gob.cl", "gob.bo", "gob.pe", "gob.es", "gob.cr",
    "gub.uy", "gouv.fr", "gouv.nc", "gouv.ma", "gouv.dz",
    "go.jp", "go.kr", "go.id", "go.th", "go.tz", "go.cr",
    "govt.nz", "gv.at", "guv.ro",
    "mil.ar", "mil.br", "mil.uk",
    "admin.ch", "fed.us",
    "nic.in", "ac.in", "edu.au", "edu.ar",
];

/// A fully-qualified hostname, stored lowercase without a trailing dot.
///
/// ```
/// use govhost_types::Hostname;
/// let h: Hostname = "CDN.Prodecon.GOB.MX".parse().unwrap();
/// assert_eq!(h.as_str(), "cdn.prodecon.gob.mx");
/// assert_eq!(h.registrable_domain().as_str(), "prodecon.gob.mx");
/// ```
/// Internally reference-counted: cloning a `Hostname` is a refcount bump,
/// which matters because every captured URL carries one.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hostname(Arc<str>);

impl Hostname {
    /// The hostname as a lowercase string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from leftmost to rightmost (`www.gov.br` → `["www","gov","br"]`).
    pub fn labels(&self) -> impl DoubleEndedIterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The top-level domain (rightmost label).
    pub fn tld(&self) -> &str {
        self.labels().next_back().expect("hostname has at least one label")
    }

    /// The public suffix under which this name is registered: either a known
    /// multi-label suffix (`gob.mx`) or the bare TLD (`nl`).
    pub fn public_suffix(&self) -> &str {
        for suffix in MULTI_LABEL_SUFFIXES {
            if self.ends_with_suffix(suffix) {
                return suffix;
            }
        }
        self.tld()
    }

    /// The registrable domain: one label more than the public suffix.
    ///
    /// A hostname that *is* a public suffix (or a bare TLD) is returned
    /// unchanged.
    pub fn registrable_domain(&self) -> Hostname {
        let suffix = self.public_suffix();
        if self.0.len() == suffix.len() {
            return self.clone();
        }
        let head = &self.0[..self.0.len() - suffix.len() - 1];
        let owner = head.rsplit('.').next().expect("split always yields one item");
        Hostname(format!("{owner}.{suffix}").into())
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &Hostname) -> bool {
        self == other || self.ends_with_suffix(other.as_str())
    }

    fn ends_with_suffix(&self, suffix: &str) -> bool {
        self.0.len() > suffix.len()
            && self.0.ends_with(suffix)
            && self.0.as_bytes()[self.0.len() - suffix.len() - 1] == b'.'
    }
}

impl FromStr for Hostname {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(ParseError::new("Hostname", s, "empty"));
        }
        if s.len() > 253 {
            // Truncate the error context at a char boundary — slicing at a
            // fixed byte offset panics on multi-byte UTF-8.
            let cut = (0..=32).rev().find(|i| s.is_char_boundary(*i)).unwrap_or(0);
            return Err(ParseError::new("Hostname", &s[..cut], "longer than 253 bytes"));
        }
        for label in s.split('.') {
            if label.is_empty() {
                return Err(ParseError::new("Hostname", s, "empty label"));
            }
            if label.len() > 63 {
                return Err(ParseError::new("Hostname", s, "label longer than 63 bytes"));
            }
            let bytes = label.as_bytes();
            if !bytes.iter().all(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_') {
                return Err(ParseError::new("Hostname", s, "label has invalid character"));
            }
            if bytes[0] == b'-' || bytes[bytes.len() - 1] == b'-' {
                return Err(ParseError::new("Hostname", s, "label starts or ends with hyphen"));
            }
        }
        Ok(Hostname(s.to_ascii_lowercase().into()))
    }
}

impl fmt::Display for Hostname {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Hostname {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hostname({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> Hostname {
        s.parse().unwrap()
    }

    #[test]
    fn lowercases_and_strips_trailing_dot() {
        assert_eq!(h("WWW.Example.COM.").as_str(), "www.example.com");
    }

    #[test]
    fn rejects_malformed() {
        assert!("".parse::<Hostname>().is_err());
        assert!("a..b".parse::<Hostname>().is_err());
        assert!("-bad.com".parse::<Hostname>().is_err());
        assert!("bad-.com".parse::<Hostname>().is_err());
        assert!("sp ace.com".parse::<Hostname>().is_err());
        let long = "a".repeat(64) + ".com";
        assert!(long.parse::<Hostname>().is_err());
    }

    #[test]
    fn registrable_domain_simple_tld() {
        assert_eq!(h("www.defensie.nl").registrable_domain(), h("defensie.nl"));
        assert_eq!(h("a.b.c.orniss.ro").registrable_domain(), h("orniss.ro"));
    }

    #[test]
    fn registrable_domain_multi_label_suffix() {
        assert_eq!(h("www.prodecon.gob.mx").registrable_domain(), h("prodecon.gob.mx"));
        assert_eq!(
            h("cdn.energia-argentina.com.ar").registrable_domain(),
            h("energia-argentina.com.ar")
        );
        assert_eq!(h("www.gov.br").registrable_domain(), h("www.gov.br"));
    }

    #[test]
    fn registrable_domain_of_suffix_itself_is_identity() {
        assert_eq!(h("gob.mx").registrable_domain(), h("gob.mx"));
        assert_eq!(h("uk").registrable_domain(), h("uk"));
    }

    #[test]
    fn subdomain_relation() {
        assert!(h("a.social.gov.ma").is_subdomain_of(&h("social.gov.ma")));
        assert!(h("social.gov.ma").is_subdomain_of(&h("social.gov.ma")));
        assert!(!h("notsocial.gov.ma").is_subdomain_of(&h("social.gov.ma")));
        assert!(!h("gov.ma").is_subdomain_of(&h("social.gov.ma")));
    }

    #[test]
    fn tld_and_labels() {
        let n = h("www.gub.uy");
        assert_eq!(n.tld(), "uy");
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.labels().collect::<Vec<_>>(), vec!["www", "gub", "uy"]);
    }

    #[test]
    fn public_suffix_picks_longest_known() {
        assert_eq!(h("x.gouv.nc").public_suffix(), "gouv.nc");
        assert_eq!(h("x.example.de").public_suffix(), "de");
    }

    #[test]
    fn underscore_labels_allowed() {
        // Seen in the wild for service records / internal names.
        assert!("_dmarc.example.com".parse::<Hostname>().is_ok());
    }
}

//! Typed ids for the interned dataset representation.
//!
//! The build pipeline used to address host records with raw `u32`
//! indices (`dataset.hosts[u.host as usize]`), which compiles happily
//! when a URL index is confused with a host index. [`HostId`] and
//! [`UrlId`] make those two index spaces distinct types: a table keyed
//! by one cannot be accidentally indexed by the other, and the `as
//! usize` casts live in exactly one place ([`HostId::index`] /
//! [`UrlId::index`]).
//!
//! [`HostInterner`] is the arena that assigns [`HostId`]s: each distinct
//! hostname is stored once, in first-interned order, and every later
//! occurrence is a 4-byte id instead of another `Arc` bump or `String`.
//! The interner's arena order *is* the host-record order of the built
//! dataset, so `HostId` doubles as the row index of the host table.

use crate::host::Hostname;
use std::collections::HashMap;

/// Identifier of one host record: an index into the host arena of the
/// build that produced it. Ids from different builds (or different
/// [`HostInterner`]s) are not comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct HostId(u32);

impl HostId {
    /// Wrap a raw row index (the import path and tests build ids from
    /// known row numbers; pipeline code receives them from the interner).
    pub const fn new(raw: u32) -> HostId {
        HostId(raw)
    }

    /// The raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize` table index — the one sanctioned cast.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host#{}", self.0)
    }
}

/// Identifier of one URL row in a columnar URL table. Same contract as
/// [`HostId`]: valid only against the table that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct UrlId(u32);

impl UrlId {
    /// Wrap a raw row index.
    pub const fn new(raw: u32) -> UrlId {
        UrlId(raw)
    }

    /// The raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize` row index — the one sanctioned cast.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UrlId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "url#{}", self.0)
    }
}

/// A per-build hostname arena: every distinct hostname is assigned a
/// dense [`HostId`] in first-interned order.
///
/// `Hostname` is an `Arc<str>` internally, so interning an
/// already-known name costs one hash lookup and interning a new one
/// costs one reference-count bump — no string copies either way.
///
/// ```
/// use govhost_types::{HostId, HostInterner, Hostname};
/// let mut interner = HostInterner::new();
/// let a: Hostname = "a.gov".parse().unwrap();
/// let (id, new) = interner.intern(&a);
/// assert!(new);
/// assert_eq!(id, HostId::new(0));
/// assert_eq!(interner.intern(&a), (id, false));
/// assert_eq!(interner.resolve(id), &a);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostInterner {
    names: Vec<Hostname>,
    ids: HashMap<Hostname, HostId>,
}

impl HostInterner {
    /// An empty interner.
    pub fn new() -> HostInterner {
        HostInterner::default()
    }

    /// Intern a hostname: returns its id and whether this call created
    /// it (`true` exactly on the first sighting).
    pub fn intern(&mut self, name: &Hostname) -> (HostId, bool) {
        if let Some(id) = self.ids.get(name) {
            return (*id, false);
        }
        let id = HostId::new(u32::try_from(self.names.len()).expect("host arena outgrew u32"));
        self.names.push(name.clone());
        self.ids.insert(name.clone(), id);
        (id, true)
    }

    /// Look a hostname up without interning it.
    pub fn get(&self, name: &Hostname) -> Option<HostId> {
        self.ids.get(name).copied()
    }

    /// The hostname behind an id.
    ///
    /// # Panics
    ///
    /// If `id` was not issued by this interner.
    pub fn resolve(&self, id: HostId) -> &Hostname {
        &self.names[id.index()]
    }

    /// Number of distinct hostnames interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, hostname)` in arena (first-interned) order.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, &Hostname)> {
        self.names.iter().enumerate().map(|(i, h)| (HostId::new(i as u32), h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> Hostname {
        s.parse().unwrap()
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut it = HostInterner::new();
        let (a, new_a) = it.intern(&h("a.gov"));
        let (b, new_b) = it.intern(&h("b.gov"));
        assert!(new_a && new_b);
        assert_eq!((a.raw(), b.raw()), (0, 1));
        assert_eq!(it.intern(&h("a.gov")), (a, false));
        assert_eq!(it.len(), 2);
        let names: Vec<&Hostname> = it.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec![&h("a.gov"), &h("b.gov")]);
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = HostInterner::new();
        assert_eq!(it.get(&h("a.gov")), None);
        let (id, _) = it.intern(&h("a.gov"));
        assert_eq!(it.get(&h("a.gov")), Some(id));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = HostInterner::new();
        for name in ["x.gov", "y.gob.mx", "z.go.jp"] {
            let (id, _) = it.intern(&h(name));
            assert_eq!(it.resolve(id).as_str(), name);
        }
    }

    #[test]
    fn display_names_the_index_space() {
        assert_eq!(HostId::new(3).to_string(), "host#3");
        assert_eq!(UrlId::new(9).to_string(), "url#9");
        assert_eq!(UrlId::new(9).index(), 9);
    }
}

//! Development indices attached to each country (Table 9 and App. E).

/// Country-level development indicators.
///
/// The first three (`egdi`, `hdi`, `iui`) drive the paper's country
/// *selection* (Table 9); the rest feed the App. E explanatory OLS model
/// (Fig. 12, Table 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountryIndices {
    /// UN E-Government Development Index, 0..=1.
    pub egdi: f64,
    /// UN Human Development Index, 0..=1.
    pub hdi: f64,
    /// Internet-penetration rate (ITU "Internet Users Index"), percent 0..=100.
    pub iui: f64,
    /// Share of the world's Internet population, percent.
    pub internet_pop_share: f64,
    /// ICT Development Index (IDI), roughly 0..=10.
    pub idi: f64,
    /// Heritage Economic Freedom Index, 0..=100.
    pub econ_freedom: f64,
    /// GDP per capita, USD.
    pub gdp_per_capita: f64,
    /// Network Readiness Index, 0..=100.
    pub nri: f64,
    /// Absolute number of Internet users.
    pub internet_users: f64,
}

impl CountryIndices {
    /// The App. E feature vector, in the order `(IDI, EFI, GDP, HDI, NRI,
    /// users)` used by the explanatory regression.
    pub fn feature_vector(&self) -> [f64; 6] {
        [
            self.idi,
            self.econ_freedom,
            self.gdp_per_capita,
            self.hdi,
            self.nri,
            self.internet_users,
        ]
    }

    /// Feature names matching [`Self::feature_vector`].
    pub const FEATURE_NAMES: [&'static str; 6] =
        ["IDI", "econ_freedom", "GDP", "HDI", "NRI", "internet_users"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_order_matches_names() {
        let idx = CountryIndices {
            egdi: 0.9,
            hdi: 0.8,
            iui: 92.0,
            internet_pop_share: 5.0,
            idi: 8.0,
            econ_freedom: 70.0,
            gdp_per_capita: 50_000.0,
            nri: 75.0,
            internet_users: 3.0e8,
        };
        let v = idx.feature_vector();
        assert_eq!(v[0], 8.0); // IDI
        assert_eq!(v[2], 50_000.0); // GDP
        assert_eq!(v[3], 0.8); // HDI
        assert_eq!(v[5], 3.0e8); // users
        assert_eq!(CountryIndices::FEATURE_NAMES.len(), v.len());
    }
}

//! Autonomous-system numbers and IPv4 prefixes.

use crate::error::ParseError;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An Autonomous System Number.
///
/// ```
/// use govhost_types::Asn;
/// assert_eq!(Asn(13335).to_string(), "AS13335");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl Asn {
    /// The raw numeric value.
    pub fn value(&self) -> u32 {
        self.0
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl FromStr for Asn {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix("AS").or_else(|| s.strip_prefix("as")).unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseError::new("Asn", s, "expected AS<number> or a number"))
    }
}

/// An IPv4 prefix in CIDR notation (e.g. `203.0.113.0/24`).
///
/// The base address is stored masked, so two textual spellings of the same
/// prefix compare equal:
///
/// ```
/// use govhost_types::IpPrefix;
/// let a: IpPrefix = "10.1.2.3/16".parse().unwrap();
/// let b: IpPrefix = "10.1.0.0/16".parse().unwrap();
/// assert_eq!(a, b);
/// ```
// A prefix length is not a container length; `is_empty` would be
// meaningless here.
#[allow(clippy::len_without_is_empty)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpPrefix {
    base: u32,
    len: u8,
}

impl IpPrefix {
    /// Create a prefix from a base address and length, masking host bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(base: Ipv4Addr, len: u8) -> Result<Self, ParseError> {
        if len > 32 {
            return Err(ParseError::new("IpPrefix", format!("{base}/{len}"), "length exceeds 32"));
        }
        let raw = u32::from(base);
        Ok(Self { base: raw & Self::mask(len), len })
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length (default) prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered (saturating at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - u32::from(self.len))
        }
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == self.base
    }

    /// The `i`-th address in the prefix, if in range.
    pub fn nth(&self, i: u32) -> Option<Ipv4Addr> {
        if self.len == 0 || i < self.size() {
            self.base.checked_add(i).map(Ipv4Addr::from)
        } else {
            None
        }
    }

    /// Iterate over all host addresses in the prefix (bounded; intended for
    /// prefixes of /20 or longer in the simulator).
    pub fn addresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let size = self.size();
        (0..size).map_while(move |i| self.nth(i))
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for IpPrefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new("IpPrefix", s, "missing '/'"))?;
        let base: Ipv4Addr =
            addr.parse().map_err(|_| ParseError::new("IpPrefix", s, "invalid base address"))?;
        let len: u8 =
            len.parse().map_err(|_| ParseError::new("IpPrefix", s, "invalid prefix length"))?;
        Self::new(base, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_parse_and_display() {
        assert_eq!("AS16509".parse::<Asn>().unwrap(), Asn(16509));
        assert_eq!("16509".parse::<Asn>().unwrap(), Asn(16509));
        assert_eq!(Asn(8075).to_string(), "AS8075");
        assert!("ASxyz".parse::<Asn>().is_err());
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p: IpPrefix = "192.0.2.77/24".parse().unwrap();
        assert_eq!(p.network(), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(p.to_string(), "192.0.2.0/24");
    }

    #[test]
    fn prefix_contains() {
        let p: IpPrefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(10, 255, 1, 2)));
        assert!(!p.contains(Ipv4Addr::new(11, 0, 0, 1)));
    }

    #[test]
    fn prefix_size_and_nth() {
        let p: IpPrefix = "198.51.100.0/30".parse().unwrap();
        assert_eq!(p.size(), 4);
        assert_eq!(p.nth(0).unwrap(), Ipv4Addr::new(198, 51, 100, 0));
        assert_eq!(p.nth(3).unwrap(), Ipv4Addr::new(198, 51, 100, 3));
        assert!(p.nth(4).is_none());
    }

    #[test]
    fn prefix_iterates_all_addresses() {
        let p: IpPrefix = "203.0.113.0/29".parse().unwrap();
        let addrs: Vec<_> = p.addresses().collect();
        assert_eq!(addrs.len(), 8);
        assert!(addrs.iter().all(|a| p.contains(*a)));
    }

    #[test]
    fn rejects_bad_input() {
        assert!("10.0.0.0".parse::<IpPrefix>().is_err());
        assert!("10.0.0.0/33".parse::<IpPrefix>().is_err());
        assert!("999.0.0.0/8".parse::<IpPrefix>().is_err());
    }

    #[test]
    fn default_prefix_contains_everything() {
        let p = IpPrefix::new(Ipv4Addr::new(0, 0, 0, 0), 0).unwrap();
        assert!(p.is_default());
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(p.contains(Ipv4Addr::new(0, 0, 0, 0)));
    }

    #[test]
    fn slash_32_is_single_address() {
        let p: IpPrefix = "198.51.100.7/32".parse().unwrap();
        assert_eq!(p.size(), 1);
        assert!(p.contains(Ipv4Addr::new(198, 51, 100, 7)));
        assert!(!p.contains(Ipv4Addr::new(198, 51, 100, 8)));
    }
}

#![deny(missing_docs)]
//! # govhost-types
//!
//! Shared vocabulary for the govhost workspace: country codes, World Bank
//! regions, autonomous-system numbers, IPv4 prefixes, hostnames with
//! public-suffix-aware registrable-domain extraction, URLs, hosting
//! categories, and development indices.
//!
//! Every other crate in the workspace builds on these types; they carry no
//! simulation or analysis logic of their own.

pub mod category;
pub mod country;
pub mod error;
pub mod host;
pub mod id;
pub mod indices;
pub mod ip;
pub mod pipeline;
pub mod region;
pub mod url;

pub use category::{OrgKind, ProviderCategory, TopsiteCategory};
pub use country::CountryCode;
pub use error::ParseError;
pub use host::Hostname;
pub use id::{HostId, HostInterner, UrlId};
pub use indices::CountryIndices;
pub use ip::{Asn, IpPrefix};
pub use pipeline::{PipelineError, PipelineStage};
pub use region::Region;
pub use url::Url;

/// Common imports for downstream crates.
pub mod prelude {
    pub use crate::category::{OrgKind, ProviderCategory, TopsiteCategory};
    pub use crate::country::CountryCode;
    pub use crate::error::ParseError;
    pub use crate::host::Hostname;
    pub use crate::id::{HostId, HostInterner, UrlId};
    pub use crate::indices::CountryIndices;
    pub use crate::ip::{Asn, IpPrefix};
    pub use crate::pipeline::{PipelineError, PipelineStage};
    pub use crate::region::Region;
    pub use crate::url::Url;
}

//! Typed pipeline faults.
//!
//! The measurement pipeline runs against a messy Internet: landing pages
//! geo-block the vantage, hostnames fail to resolve, addresses resist
//! geolocation. These are *expected* outcomes, not bugs — so they travel
//! as values ([`PipelineError`]) rather than panics, tagged with the
//! stage that produced them so fault-tolerant builds can quarantine the
//! failing unit and report exactly what was skipped and why.

use crate::host::Hostname;
use crate::url::Url;
use std::fmt;
use std::net::Ipv4Addr;

/// The pipeline stage where a fault arose (mirrors the §3 methodology
/// stages instrumented by the build timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// §3.2 crawling.
    Crawl,
    /// §3.3 government-URL classification.
    Classify,
    /// §3.4 resolution + WHOIS identification.
    Identify,
    /// §3.5 geolocation validation.
    Geolocate,
}

impl PipelineStage {
    /// Stable lower-case stage name (matches the `StageTimings` labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            PipelineStage::Crawl => "crawl",
            PipelineStage::Classify => "classify",
            PipelineStage::Identify => "identify",
            PipelineStage::Geolocate => "geolocate",
        }
    }

    /// Parse a stage from its [`Self::as_str`] name.
    pub fn parse(s: &str) -> Option<PipelineStage> {
        Some(match s {
            "crawl" => PipelineStage::Crawl,
            "classify" => PipelineStage::Classify,
            "identify" => PipelineStage::Identify,
            "geolocate" => PipelineStage::Geolocate,
            _ => return None,
        })
    }
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An expected measurement fault, tagged with the subject it concerns.
///
/// Stages construct these instead of swallowing errors or panicking;
/// the build layer decides (per its failure policy) whether a fault
/// aborts the run or quarantines the failing unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A landing page could not be fetched (geo-block, dead site).
    Crawl {
        /// The landing URL that failed.
        url: Url,
        /// The underlying fetch error, rendered.
        cause: String,
    },
    /// A hostname did not resolve (NXDOMAIN, broken zone, wire fault).
    Resolution {
        /// The hostname that failed to resolve.
        host: Hostname,
        /// The underlying resolution error, rendered.
        cause: String,
    },
    /// An address could not be attributed to a country.
    Geolocation {
        /// The address that was excluded.
        ip: Ipv4Addr,
        /// Why the pipeline excluded it.
        cause: String,
    },
}

impl PipelineError {
    /// The stage that produced this fault.
    pub fn stage(&self) -> PipelineStage {
        match self {
            PipelineError::Crawl { .. } => PipelineStage::Crawl,
            PipelineError::Resolution { .. } => PipelineStage::Identify,
            PipelineError::Geolocation { .. } => PipelineStage::Geolocate,
        }
    }

    /// The rendered underlying cause.
    pub fn cause(&self) -> &str {
        match self {
            PipelineError::Crawl { cause, .. }
            | PipelineError::Resolution { cause, .. }
            | PipelineError::Geolocation { cause, .. } => cause,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Crawl { url, cause } => write!(f, "crawl of {url} failed: {cause}"),
            PipelineError::Resolution { host, cause } => {
                write!(f, "resolution of {host} failed: {cause}")
            }
            PipelineError::Geolocation { ip, cause } => {
                write!(f, "geolocation of {ip} failed: {cause}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in [
            PipelineStage::Crawl,
            PipelineStage::Classify,
            PipelineStage::Identify,
            PipelineStage::Geolocate,
        ] {
            assert_eq!(PipelineStage::parse(stage.as_str()), Some(stage));
        }
        assert_eq!(PipelineStage::parse("nope"), None);
    }

    #[test]
    fn display_names_subject_and_cause() {
        let e = PipelineError::Crawl {
            url: "https://blocked.gob.mx/".parse().unwrap(),
            cause: "geo-blocked".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("blocked.gob.mx"));
        assert!(s.contains("geo-blocked"));
        assert_eq!(e.stage(), PipelineStage::Crawl);
        assert_eq!(e.cause(), "geo-blocked");
    }

    #[test]
    fn resolution_maps_to_identify_stage() {
        let e = PipelineError::Resolution {
            host: "dead.gov.br".parse().unwrap(),
            cause: "NXDOMAIN".to_string(),
        };
        assert_eq!(e.stage(), PipelineStage::Identify);
        let g = PipelineError::Geolocation {
            ip: "198.51.100.7".parse().unwrap(),
            cause: "unresolved".to_string(),
        };
        assert_eq!(g.stage(), PipelineStage::Geolocate);
    }
}

//! The World Bank's seven-region division of the world, used throughout the
//! paper for regional aggregation (§4.1).

use crate::error::ParseError;
use std::fmt;
use std::str::FromStr;

/// A World Bank region.
///
/// The paper groups its 61 countries into these seven regions and reports
/// every regional figure (Figs. 4, 8, 9; Table 5) against them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// Latin America and the Caribbean.
    LatinAmericaCaribbean,
    /// Europe and Central Asia.
    EuropeCentralAsia,
    /// Middle East and North Africa.
    MiddleEastNorthAfrica,
    /// Sub-Saharan Africa.
    SubSaharanAfrica,
    /// South Asia.
    SouthAsia,
    /// East Asia and Pacific.
    EastAsiaPacific,
}

impl Region {
    /// All seven regions, in a stable order used for iteration and display.
    pub const ALL: [Region; 7] = [
        Region::NorthAmerica,
        Region::LatinAmericaCaribbean,
        Region::EuropeCentralAsia,
        Region::MiddleEastNorthAfrica,
        Region::SubSaharanAfrica,
        Region::SouthAsia,
        Region::EastAsiaPacific,
    ];

    /// The short code the paper uses (NA, LAC, ECA, MENA, SSA, SA, EAP).
    pub fn code(&self) -> &'static str {
        match self {
            Region::NorthAmerica => "NA",
            Region::LatinAmericaCaribbean => "LAC",
            Region::EuropeCentralAsia => "ECA",
            Region::MiddleEastNorthAfrica => "MENA",
            Region::SubSaharanAfrica => "SSA",
            Region::SouthAsia => "SA",
            Region::EastAsiaPacific => "EAP",
        }
    }

    /// The full World Bank region name.
    pub fn name(&self) -> &'static str {
        match self {
            Region::NorthAmerica => "North America",
            Region::LatinAmericaCaribbean => "Latin America and the Caribbean",
            Region::EuropeCentralAsia => "Europe and Central Asia",
            Region::MiddleEastNorthAfrica => "Middle East and North Africa",
            Region::SubSaharanAfrica => "Sub-Saharan Africa",
            Region::SouthAsia => "South Asia",
            Region::EastAsiaPacific => "East Asia and Pacific",
        }
    }

    /// Stable small index (0..7) for use in fixed-size arrays.
    pub fn index(&self) -> usize {
        Region::ALL.iter().position(|r| r == self).expect("region is in ALL")
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for Region {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Region::ALL
            .iter()
            .copied()
            .find(|r| r.code().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseError::new("Region", s, "unknown World Bank region code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for r in Region::ALL {
            assert_eq!(r.code().parse::<Region>().unwrap(), r);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("mena".parse::<Region>().unwrap(), Region::MiddleEastNorthAfrica);
    }

    #[test]
    fn unknown_code_errors() {
        assert!("XX".parse::<Region>().is_err());
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 7];
        for r in Region::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn names_are_nonempty() {
        for r in Region::ALL {
            assert!(!r.name().is_empty());
        }
    }
}

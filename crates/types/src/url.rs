//! Minimal URL type: scheme, hostname, path.
//!
//! The crawler and the analyses only ever need the scheme (http/https), the
//! hostname (for classification and resolution), and the path (for URL
//! uniqueness and link structure), so this type deliberately omits query
//! strings, fragments, ports, and userinfo.

use crate::error::ParseError;
use crate::host::Hostname;
use std::fmt;
use std::str::FromStr;

/// URL scheme; the simulated web serves only HTTP and HTTPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// The scheme as it appears in a URL.
    pub fn as_str(&self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed URL.
///
/// ```
/// use govhost_types::Url;
/// let u: Url = "https://www.gub.uy/tramites/start".parse().unwrap();
/// assert_eq!(u.hostname().as_str(), "www.gub.uy");
/// assert_eq!(u.path(), "/tramites/start");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    scheme: Scheme,
    hostname: Hostname,
    path: String,
}

impl Url {
    /// Build a URL from parts; the path is normalized to start with `/`.
    pub fn new(scheme: Scheme, hostname: Hostname, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if path.is_empty() {
            path.push('/');
        } else if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Self { scheme, hostname, path }
    }

    /// Shorthand for an HTTPS URL.
    pub fn https(hostname: Hostname, path: impl Into<String>) -> Self {
        Self::new(Scheme::Https, hostname, path)
    }

    /// The scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The hostname.
    pub fn hostname(&self) -> &Hostname {
        &self.hostname
    }

    /// The path, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// A new URL on the same host and scheme with a different path.
    pub fn with_path(&self, path: impl Into<String>) -> Self {
        Self::new(self.scheme, self.hostname.clone(), path)
    }
}

impl FromStr for Url {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme, rest) = if let Some(rest) = s.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else if let Some(rest) = s.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else {
            return Err(ParseError::new("Url", s, "missing http:// or https:// scheme"));
        };
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let hostname: Hostname = host.parse()?;
        Ok(Url::new(scheme, hostname, path))
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme.as_str(), self.hostname, self.path)
    }
}

impl fmt::Debug for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Url({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let u: Url = "https://www.gov.br/abin/pt-br".parse().unwrap();
        assert_eq!(u.to_string(), "https://www.gov.br/abin/pt-br");
        assert_eq!(u.scheme(), Scheme::Https);
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u: Url = "http://example.go.jp".parse().unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "http://example.go.jp/");
    }

    #[test]
    fn rejects_unknown_scheme() {
        assert!("ftp://example.com/".parse::<Url>().is_err());
        assert!("example.com/".parse::<Url>().is_err());
    }

    #[test]
    fn rejects_bad_hostname() {
        assert!("https:///path".parse::<Url>().is_err());
        assert!("https://bad host/".parse::<Url>().is_err());
    }

    #[test]
    fn with_path_keeps_host_and_scheme() {
        let u: Url = "https://www.gub.uy/a".parse().unwrap();
        let v = u.with_path("b/c");
        assert_eq!(v.to_string(), "https://www.gub.uy/b/c");
    }

    #[test]
    fn same_host_different_paths_are_distinct_urls() {
        let a: Url = "https://www.gov.br/secretariageral/pt-br".parse().unwrap();
        let b: Url = "https://www.gov.br/abin/pt-br".parse().unwrap();
        assert_ne!(a, b);
        assert_eq!(a.hostname(), b.hostname());
    }
}

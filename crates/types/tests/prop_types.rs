//! Property tests for the vocabulary types.

use govhost_types::{CountryCode, Hostname, IpPrefix, Url};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_hostname() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?").expect("regex"),
        1..5,
    )
    .prop_map(|labels| labels.join("."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hostname_parse_display_round_trips(s in arb_hostname()) {
        let h: Hostname = s.parse().expect("generated hostnames are valid");
        prop_assert_eq!(h.to_string(), s.to_lowercase());
        let again: Hostname = h.to_string().parse().expect("round trip");
        prop_assert_eq!(again, h);
    }

    #[test]
    fn hostname_parser_never_panics(s in "\\PC{0,300}") {
        let _ = s.parse::<Hostname>();
    }

    #[test]
    fn registrable_domain_is_idempotent_and_suffix(s in arb_hostname()) {
        let h: Hostname = s.parse().expect("valid");
        let rd = h.registrable_domain();
        prop_assert!(h.is_subdomain_of(&rd), "{h} must be under {rd}");
        prop_assert_eq!(rd.registrable_domain(), rd.clone());
    }

    #[test]
    fn subdomain_relation_is_reflexive_and_antisymmetric(a in arb_hostname(), b in arb_hostname()) {
        let ha: Hostname = a.parse().expect("valid");
        let hb: Hostname = b.parse().expect("valid");
        prop_assert!(ha.is_subdomain_of(&ha));
        if ha != hb && ha.is_subdomain_of(&hb) {
            prop_assert!(!hb.is_subdomain_of(&ha));
        }
    }

    #[test]
    fn url_round_trips(host in arb_hostname(), path in "(/[a-z0-9._~-]{0,12}){0,4}") {
        let url_str = format!("https://{host}{path}");
        let url: Url = url_str.parse().expect("generated URLs are valid");
        let again: Url = url.to_string().parse().expect("round trip");
        prop_assert_eq!(again, url);
    }

    #[test]
    fn url_parser_never_panics(s in "\\PC{0,200}") {
        let _ = s.parse::<Url>();
    }

    #[test]
    fn prefix_contains_its_own_addresses(base in any::<u32>(), len in 20u8..=32) {
        let prefix = IpPrefix::new(Ipv4Addr::from(base), len).expect("len valid");
        prop_assert!(prefix.contains(prefix.network()));
        for i in [0u32, 1, prefix.size().saturating_sub(1)] {
            if let Some(addr) = prefix.nth(i) {
                prop_assert!(prefix.contains(addr));
            }
        }
        // One past the end is outside (when it doesn't overflow).
        if let Some(past) = u32::from(prefix.network()).checked_add(prefix.size()) {
            prop_assert!(!prefix.contains(Ipv4Addr::from(past)));
        }
    }

    #[test]
    fn prefix_round_trips_text(base in any::<u32>(), len in 0u8..=32) {
        let p = IpPrefix::new(Ipv4Addr::from(base), len).expect("valid");
        let q: IpPrefix = p.to_string().parse().expect("round trip");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn country_code_round_trips(s in "[A-Z]{2}") {
        let c: CountryCode = s.parse().expect("two letters");
        prop_assert_eq!(c.to_string(), s);
    }
}

//! Property tests for the vocabulary types, on the in-repo harness.

use govhost_harness::{gens, prop_assert, prop_assert_eq, Config, Gen};
use govhost_types::{CountryCode, Hostname, IpPrefix, Url};
use std::net::Ipv4Addr;

const REGRESSIONS: &str = "tests/regressions/prop_types.txt";

fn cfg(name: &str) -> Config {
    Config::new(name).cases(256).regressions(REGRESSIONS)
}

const ALNUM: &str = "abcdefghijklmnopqrstuvwxyz0123456789";

/// One DNS label: `[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?`.
fn arb_label() -> Gen<String> {
    const INNER: &str = "abcdefghijklmnopqrstuvwxyz0123456789-";
    gens::zip3(
        gens::string_of(ALNUM, 1, 1),
        gens::string_of(INNER, 0, 10),
        gens::string_of(ALNUM, 0, 1),
    )
    .map(|(first, middle, last)| {
        if last.is_empty() {
            first
        } else {
            format!("{first}{middle}{last}")
        }
    })
}

/// 1-4 labels joined with dots.
fn arb_hostname() -> Gen<String> {
    gens::vec(arb_label(), 1, 4).map(|labels| labels.join("."))
}

#[test]
fn hostname_parse_display_round_trips() {
    cfg("hostname_parse_display_round_trips").run(&arb_hostname(), |s| {
        let h: Hostname = s.parse().expect("generated hostnames are valid");
        prop_assert_eq!(h.to_string(), s.to_lowercase());
        let again: Hostname = h.to_string().parse().expect("round trip");
        prop_assert_eq!(again, h);
        Ok(())
    });
}

#[test]
fn hostname_parser_never_panics() {
    cfg("hostname_parser_never_panics").run(&gens::unicode_string(0, 300), |s| {
        let _ = s.parse::<Hostname>();
        Ok(())
    });
}

#[test]
fn registrable_domain_is_idempotent_and_suffix() {
    cfg("registrable_domain_is_idempotent_and_suffix").run(&arb_hostname(), |s| {
        let h: Hostname = s.parse().expect("valid");
        let rd = h.registrable_domain();
        prop_assert!(h.is_subdomain_of(&rd), "{h} must be under {rd}");
        prop_assert_eq!(rd.registrable_domain(), rd.clone());
        Ok(())
    });
}

#[test]
fn subdomain_relation_is_reflexive_and_antisymmetric() {
    let pairs = arb_hostname().zip(arb_hostname());
    cfg("subdomain_relation_is_reflexive_and_antisymmetric").run(&pairs, |(a, b)| {
        let ha: Hostname = a.parse().expect("valid");
        let hb: Hostname = b.parse().expect("valid");
        prop_assert!(ha.is_subdomain_of(&ha));
        if ha != hb && ha.is_subdomain_of(&hb) {
            prop_assert!(!hb.is_subdomain_of(&ha));
        }
        Ok(())
    });
}

/// A URL path: `(/[a-z0-9._~-]{0,12}){0,4}`.
fn arb_path() -> Gen<String> {
    let segment = gens::string_of("abcdefghijklmnopqrstuvwxyz0123456789._~-", 0, 12)
        .map(|s| format!("/{s}"));
    gens::vec(segment, 0, 4).map(|segs| segs.concat())
}

#[test]
fn url_round_trips() {
    let inputs = arb_hostname().zip(arb_path());
    cfg("url_round_trips").run(&inputs, |(host, path)| {
        let url_str = format!("https://{host}{path}");
        let url: Url = url_str.parse().expect("generated URLs are valid");
        let again: Url = url.to_string().parse().expect("round trip");
        prop_assert_eq!(again, url);
        Ok(())
    });
}

#[test]
fn url_parser_never_panics() {
    cfg("url_parser_never_panics").run(&gens::unicode_string(0, 200), |s| {
        let _ = s.parse::<Url>();
        Ok(())
    });
}

#[test]
fn prefix_contains_its_own_addresses() {
    let inputs = gens::u32_any().zip(gens::u64_range(20, 33));
    cfg("prefix_contains_its_own_addresses").run(&inputs, |&(base, len)| {
        let prefix = IpPrefix::new(Ipv4Addr::from(base), len as u8).expect("len valid");
        prop_assert!(prefix.contains(prefix.network()));
        for i in [0u32, 1, prefix.size().saturating_sub(1)] {
            if let Some(addr) = prefix.nth(i) {
                prop_assert!(prefix.contains(addr));
            }
        }
        // One past the end is outside (when it doesn't overflow).
        if let Some(past) = u32::from(prefix.network()).checked_add(prefix.size()) {
            prop_assert!(!prefix.contains(Ipv4Addr::from(past)));
        }
        Ok(())
    });
}

#[test]
fn prefix_round_trips_text() {
    let inputs = gens::u32_any().zip(gens::u64_range(0, 33));
    cfg("prefix_round_trips_text").run(&inputs, |&(base, len)| {
        let p = IpPrefix::new(Ipv4Addr::from(base), len as u8).expect("valid");
        let q: IpPrefix = p.to_string().parse().expect("round trip");
        prop_assert_eq!(p, q);
        Ok(())
    });
}

#[test]
fn country_code_round_trips() {
    let two_letters = gens::string_of("ABCDEFGHIJKLMNOPQRSTUVWXYZ", 2, 2);
    cfg("country_code_round_trips").run(&two_letters, |s| {
        let c: CountryCode = s.parse().expect("two letters");
        prop_assert_eq!(c.to_string(), s.clone());
        Ok(())
    });
}

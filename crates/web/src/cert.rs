//! TLS certificates (the parts the methodology reads).
//!
//! §3.3's third classification step inspects the Subject Alternative Names
//! of landing-page certificates: a hostname listed in a government site's
//! SAN list is government-affiliated even when its domain looks unrelated
//! (the paper's examples: `orniss.ro`, `energia-argentina.com.ar`).

use govhost_types::Hostname;

/// A simulated TLS certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct TlsCert {
    /// Subject common name.
    pub subject: Hostname,
    /// Subject Alternative Names.
    pub sans: Vec<Hostname>,
    /// Issuing CA display name.
    pub issuer: String,
    /// Whether the certificate is self-signed (common on small government
    /// sites; Singanamalla et al. found most government HTTPS broken).
    pub self_signed: bool,
}

impl TlsCert {
    /// A certificate covering exactly its subject.
    pub fn for_host(subject: Hostname, issuer: impl Into<String>) -> Self {
        Self { sans: vec![subject.clone()], subject, issuer: issuer.into(), self_signed: false }
    }

    /// Whether `host` is covered: equal to the subject, listed in the
    /// SANs, or matched by a wildcard-like parent SAN (a SAN `example.org`
    /// covers `www.example.org` in this simplified model).
    pub fn covers(&self, host: &Hostname) -> bool {
        if *host == self.subject {
            return true;
        }
        self.sans.iter().any(|san| host == san || host.is_subdomain_of(san))
    }

    /// Whether `host` is explicitly listed (subject or exact SAN) — the
    /// strict check the SAN classification step uses.
    pub fn lists(&self, host: &Hostname) -> bool {
        *host == self.subject || self.sans.contains(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> Hostname {
        s.parse().unwrap()
    }

    #[test]
    fn for_host_covers_subject() {
        let c = TlsCert::for_host(h("www.gub.uy"), "AGESIC CA");
        assert!(c.covers(&h("www.gub.uy")));
        assert!(c.lists(&h("www.gub.uy")));
        assert!(!c.covers(&h("other.uy")));
    }

    #[test]
    fn san_listing_and_subdomain_cover() {
        let mut c = TlsCert::for_host(h("www.presidency.ro"), "GovSign");
        c.sans.push(h("orniss.ro"));
        assert!(c.lists(&h("orniss.ro")));
        assert!(!c.lists(&h("www.orniss.ro")));
        assert!(c.covers(&h("www.orniss.ro")), "subdomain covered but not listed");
    }

    #[test]
    fn unrelated_host_not_covered() {
        let c = TlsCert::for_host(h("a.example"), "CA");
        assert!(!c.covers(&h("b.example")));
        assert!(!c.covers(&h("aa.example")));
    }
}

//! The web corpus: every site in the simulated world, addressable by
//! hostname, fetched through an access-controlled interface.

use crate::cert::TlsCert;
use crate::page::Page;
use crate::site::Website;
use govhost_types::{CountryCode, Hostname, Url};
use std::collections::HashMap;
use std::fmt;

/// Why a fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// No site is served under the hostname.
    UnknownHost(Hostname),
    /// The site exists but the path does not.
    NotFound(Url),
    /// The site refuses non-domestic clients.
    GeoBlocked(Url),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::UnknownHost(h) => write!(f, "unknown host {h}"),
            FetchError::NotFound(u) => write!(f, "404 for {u}"),
            FetchError::GeoBlocked(u) => write!(f, "geo-blocked: {u}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// All websites in the world.
#[derive(Debug, Default, Clone)]
pub struct WebCorpus {
    sites: HashMap<Hostname, Website>,
}

impl WebCorpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a site, keyed by its landing hostname.
    pub fn insert(&mut self, site: Website) {
        self.sites.insert(site.landing.hostname().clone(), site);
    }

    /// The site serving a hostname.
    pub fn site(&self, host: &Hostname) -> Option<&Website> {
        self.sites.get(host)
    }

    /// Mutable site access (generator wiring).
    pub fn site_mut(&mut self, host: &Hostname) -> Option<&mut Website> {
        self.sites.get_mut(host)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterate over all sites.
    pub fn sites(&self) -> impl Iterator<Item = &Website> {
        self.sites.values()
    }

    /// Fetch a page as a client in `vantage` would.
    pub fn fetch(&self, url: &Url, vantage: Option<CountryCode>) -> Result<&Page, FetchError> {
        let site = self
            .sites
            .get(url.hostname())
            .ok_or_else(|| FetchError::UnknownHost(url.hostname().clone()))?;
        if !site.accessible_from(vantage) {
            return Err(FetchError::GeoBlocked(url.clone()));
        }
        site.page(url.path()).ok_or_else(|| FetchError::NotFound(url.clone()))
    }

    /// The certificate presented for a hostname, if the site speaks TLS.
    pub fn certificate(&self, host: &Hostname) -> Option<&TlsCert> {
        self.sites.get(host).and_then(|s| s.cert.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_types::cc;

    fn corpus() -> WebCorpus {
        let mut c = WebCorpus::new();
        let mut site = Website::new("https://www.prodecon.gob.mx/".parse().unwrap());
        site.geo_restricted_to = Some(cc!("MX"));
        site.insert_page(Page::empty("https://www.prodecon.gob.mx/ayuda".parse().unwrap(), 500));
        c.insert(site);
        c.insert(Website::new("https://www.gov.br/".parse().unwrap()));
        c
    }

    #[test]
    fn fetch_respects_geo_blocking() {
        let c = corpus();
        let url: Url = "https://www.prodecon.gob.mx/ayuda".parse().unwrap();
        assert!(c.fetch(&url, Some(cc!("MX"))).is_ok());
        assert_eq!(c.fetch(&url, Some(cc!("US"))), Err(FetchError::GeoBlocked(url.clone())));
    }

    #[test]
    fn unknown_host_and_path() {
        let c = corpus();
        let bad_host: Url = "https://nonexistent.example/".parse().unwrap();
        assert!(matches!(c.fetch(&bad_host, None), Err(FetchError::UnknownHost(_))));
        let bad_path: Url = "https://www.gov.br/missing".parse().unwrap();
        assert!(matches!(c.fetch(&bad_path, None), Err(FetchError::NotFound(_))));
    }

    #[test]
    fn open_site_fetches_from_anywhere() {
        let c = corpus();
        let url: Url = "https://www.gov.br/".parse().unwrap();
        assert!(c.fetch(&url, Some(cc!("JP"))).is_ok());
        assert!(c.fetch(&url, None).is_ok());
    }

    #[test]
    fn certificate_lookup() {
        let mut c = corpus();
        let host: Hostname = "www.gov.br".parse().unwrap();
        assert!(c.certificate(&host).is_none());
        c.site_mut(&host).unwrap().cert = Some(TlsCert::for_host(host.clone(), "ICP-Brasil"));
        assert!(c.certificate(&host).is_some());
    }
}

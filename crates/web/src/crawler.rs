//! The breadth-first crawler.
//!
//! Reproduces the paper's collection recipe (§3.2): starting from a landing
//! page, render each page (capturing every subresource into the HAR log)
//! and follow links up to seven levels deep. Links may leave the
//! government domain — deliberately so; filtering non-government URLs back
//! out is the classification step's job (§3.3), not the crawler's.
//!
//! Two consumption styles share one traversal:
//!
//! - [`CrawlSession`] is the streaming interface: [`CrawlSession::next_page`]
//!   yields rendered pages one at a time (borrowing their resources from
//!   the corpus), so a caller can classify each page as it is produced and
//!   never materialize a whole crawl. The dataset build uses this path —
//!   at scale, the materialized HAR logs were the dominant allocation.
//! - [`Crawler::crawl`] drains a session into a [`CrawlOutcome`] with a
//!   full [`HarLog`] for callers that want the classic materialized form.
//!
//! [`crawl_sites_parallel`] fans a batch of landing pages out over worker
//! threads (`govhost_par::parallel_map` and its work-stealing deques);
//! results are returned in input order, so parallel and sequential runs
//! produce identical output. A panic inside one crawl is reported once,
//! tagged with the landing URL that failed, instead of cascading into
//! unrelated channel panics.

use crate::corpus::{FetchError, WebCorpus};
use crate::har::{HarEntry, HarLog};
use crate::page::Page;
use crate::resource::ContentType;
use govhost_types::{CountryCode, PipelineError, Url};
use std::collections::{HashSet, VecDeque};

/// Crawl configuration.
///
/// ```
/// use govhost_web::{crawler::Crawler, site::Website, corpus::WebCorpus};
/// let mut corpus = WebCorpus::new();
/// corpus.insert(Website::new("https://agency.gov/".parse().unwrap()));
/// let out = Crawler::default().crawl(&corpus, &"https://agency.gov/".parse().unwrap(), None);
/// assert_eq!(out.pages_visited, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crawler {
    /// Maximum link depth below the landing page (the paper uses 7).
    pub max_depth: u32,
    /// Safety cap on pages visited per site.
    pub max_pages: usize,
}

impl Default for Crawler {
    fn default() -> Self {
        Self { max_depth: 7, max_pages: 50_000 }
    }
}

/// Fetch failures broken down by cause, for failure reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureCauses {
    /// The vantage was outside the site's allowed country.
    pub geo_blocked: u32,
    /// The site exists but the path does not (dead link).
    pub not_found: u32,
    /// No site answers for the hostname.
    pub unknown_host: u32,
}

impl FailureCauses {
    /// Count one failure under its cause.
    pub fn bump(&mut self, err: &FetchError) {
        match err {
            FetchError::GeoBlocked(_) => self.geo_blocked += 1,
            FetchError::NotFound(_) => self.not_found += 1,
            FetchError::UnknownHost(_) => self.unknown_host += 1,
        }
    }

    /// Total failures across causes.
    pub fn total(&self) -> u32 {
        self.geo_blocked + self.not_found + self.unknown_host
    }

    /// Fold another breakdown into this one.
    pub fn merge(&mut self, other: FailureCauses) {
        self.geo_blocked += other.geo_blocked;
        self.not_found += other.not_found;
        self.unknown_host += other.unknown_host;
    }
}

/// The result of crawling one landing page.
#[derive(Debug, Clone, Default)]
pub struct CrawlOutcome {
    /// Everything captured.
    pub log: HarLog,
    /// Number of pages successfully rendered.
    pub pages_visited: usize,
    /// Whether the page cap stopped the crawl early.
    pub truncated: bool,
    /// Fetch failures by cause (totals match `log.failures`).
    pub failure_causes: FailureCauses,
    /// Set when the *landing* fetch itself failed: the site contributed
    /// nothing, which a fault-tolerant build treats as a crawl-stage
    /// fault rather than an ordinary dead link deeper in the site.
    pub landing_error: Option<PipelineError>,
}

/// One page yielded by [`CrawlSession::next_page`]: the rendered
/// document plus a borrow of its corpus record (resources, sizes).
#[derive(Debug)]
pub struct CrawledPage<'a> {
    /// The page's URL (BFS traversal order).
    pub url: Url,
    /// Link depth below the landing page.
    pub depth: u32,
    /// The rendered page: `html_bytes`, `resources` — borrowed straight
    /// from the corpus, nothing is copied per page.
    pub page: &'a Page,
}

/// An in-progress breadth-first crawl that yields pages one at a time.
///
/// The streaming counterpart of [`Crawler::crawl`]: same traversal,
/// same telemetry, but the caller consumes each rendered page as it is
/// produced instead of receiving a materialized [`HarLog`] at the end.
/// Failure accounting ([`CrawlSession::failures`],
/// [`CrawlSession::failure_causes`], the landing-page fault) accumulates
/// on the session and is read off after the final page.
pub struct CrawlSession<'a> {
    crawler: Crawler,
    corpus: &'a WebCorpus,
    vantage: Option<CountryCode>,
    queue: VecDeque<(Url, u32)>,
    visited: HashSet<Url>,
    pages_visited: usize,
    truncated: bool,
    failures: u32,
    failure_causes: FailureCauses,
    landing_error: Option<PipelineError>,
}

impl<'a> CrawlSession<'a> {
    /// The next successfully rendered page in BFS order, or `None` when
    /// the crawl is exhausted (or the page cap truncated it).
    ///
    /// Fetch failures are absorbed into the session's counters exactly
    /// as [`Crawler::crawl`] counts them; a failed *landing* fetch is
    /// additionally recorded as [`CrawlSession::take_landing_error`].
    pub fn next_page(&mut self) -> Option<CrawledPage<'a>> {
        while let Some((url, depth)) = self.queue.pop_front() {
            if self.pages_visited >= self.crawler.max_pages {
                self.truncated = true;
                govhost_obs::counter_add("crawl.truncated", &[], 1);
                self.queue.clear();
                return None;
            }
            let fetched = {
                let _fetch = govhost_obs::span!("fetch");
                self.corpus.fetch(&url, self.vantage)
            };
            let page = match fetched {
                Ok(p) => p,
                Err(e) => {
                    self.failures += 1;
                    self.failure_causes.bump(&e);
                    govhost_obs::counter_add(
                        "crawl.fetch_failures",
                        &[("cause", failure_label(&e))],
                        1,
                    );
                    if depth == 0 {
                        self.landing_error =
                            Some(PipelineError::Crawl { url, cause: e.to_string() });
                    }
                    continue;
                }
            };
            self.pages_visited += 1;
            govhost_obs::observe("crawl.page_bytes", &[], page.html_bytes);
            {
                let _har = govhost_obs::span!("har");
                govhost_obs::counter_add(
                    "crawl.har_entries",
                    &[],
                    1 + page.resources.len() as u64,
                );
                if depth < self.crawler.max_depth {
                    for link in &page.links {
                        if !self.visited.contains(link) {
                            self.visited.insert(link.clone());
                            self.queue.push_back((link.clone(), depth + 1));
                        }
                    }
                }
            }
            return Some(CrawledPage { url, depth, page });
        }
        None
    }

    /// Pages successfully rendered so far.
    pub fn pages_visited(&self) -> usize {
        self.pages_visited
    }

    /// Whether the page cap stopped the crawl early.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Fetch failures so far (every cause).
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Fetch failures broken down by cause.
    pub fn failure_causes(&self) -> FailureCauses {
        self.failure_causes
    }

    /// Take the landing-page fault, if the landing fetch itself failed.
    pub fn take_landing_error(&mut self) -> Option<PipelineError> {
        self.landing_error.take()
    }
}

impl Crawler {
    /// A crawler bounded at `max_depth` with the default page cap.
    pub fn with_depth(max_depth: u32) -> Self {
        Self { max_depth, ..Self::default() }
    }

    /// Start a streaming breadth-first crawl of `landing` as seen from
    /// `vantage`. See [`CrawlSession`].
    pub fn session<'a>(
        &self,
        corpus: &'a WebCorpus,
        landing: &Url,
        vantage: Option<CountryCode>,
    ) -> CrawlSession<'a> {
        let mut queue = VecDeque::new();
        queue.push_back((landing.clone(), 0));
        let mut visited = HashSet::new();
        visited.insert(landing.clone());
        CrawlSession {
            crawler: *self,
            corpus,
            vantage,
            queue,
            visited,
            pages_visited: 0,
            truncated: false,
            failures: 0,
            failure_causes: FailureCauses::default(),
            landing_error: None,
        }
    }

    /// Breadth-first crawl of `landing` as seen from `vantage`,
    /// materialized: drains a [`CrawlSession`] into a [`CrawlOutcome`]
    /// with a full [`HarLog`].
    ///
    /// Telemetry (aggregated under the caller's open span): a `fetch`
    /// span per page request and a `har` span per rendered page (HAR
    /// capture + link extraction); counters
    /// `crawl.fetch_failures{cause=...}`, `crawl.truncated`, and
    /// `crawl.har_entries`; histogram `crawl.page_bytes` over rendered
    /// document sizes.
    pub fn crawl(
        &self,
        corpus: &WebCorpus,
        landing: &Url,
        vantage: Option<CountryCode>,
    ) -> CrawlOutcome {
        let mut session = self.session(corpus, landing, vantage);
        let mut log = HarLog::default();
        while let Some(visit) = session.next_page() {
            log.push(HarEntry {
                url: visit.url.clone(),
                bytes: visit.page.html_bytes,
                content_type: ContentType::Html,
                depth: visit.depth,
            });
            for res in &visit.page.resources {
                log.push(HarEntry {
                    url: res.url.clone(),
                    bytes: res.bytes,
                    content_type: res.content_type,
                    depth: visit.depth,
                });
            }
        }
        log.failures = session.failures;
        CrawlOutcome {
            log,
            pages_visited: session.pages_visited,
            truncated: session.truncated,
            failure_causes: session.failure_causes,
            landing_error: session.landing_error,
        }
    }
}

/// The `cause` label value for a fetch failure counter (mirrors the
/// [`FailureCauses`] field names so the metrics and the report agree).
fn failure_label(err: &FetchError) -> &'static str {
    match err {
        FetchError::GeoBlocked(_) => "geo_blocked",
        FetchError::NotFound(_) => "not_found",
        FetchError::UnknownHost(_) => "unknown_host",
    }
}

/// Crawl many landing pages in parallel. `jobs` pairs each landing URL
/// with the vantage to crawl it from. Results come back in input order,
/// independent of `threads`.
///
/// # Panics
///
/// If a crawl panics, the original panic message is re-raised once from
/// the calling thread together with the failing landing URL.
pub fn crawl_sites_parallel(
    corpus: &WebCorpus,
    crawler: &Crawler,
    jobs: &[(Url, Option<CountryCode>)],
    threads: usize,
) -> Vec<CrawlOutcome> {
    govhost_par::parallel_map(
        jobs,
        threads,
        |(url, _)| url.to_string(),
        |_, (url, vantage)| crawler.crawl(corpus, url, *vantage),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;
    use crate::resource::Resource;
    use crate::site::Website;
    use govhost_types::cc;

    /// Corpus: a.gov with a chain of pages a.gov/p0 -> p1 -> ... -> p9,
    /// each page loading one CDN resource; plus a geo-blocked site.
    fn chain_corpus() -> WebCorpus {
        let mut corpus = WebCorpus::new();
        let mut site = Website::new("https://a.gov/p0".parse().unwrap());
        for i in 0..10 {
            let mut page = Page::empty(format!("https://a.gov/p{i}").parse().unwrap(), 1_000);
            page.resources.push(Resource::new(
                format!("https://cdn.example.net/asset{i}.js").parse().unwrap(),
                500,
                ContentType::Script,
            ));
            if i < 9 {
                page.links.push(format!("https://a.gov/p{}", i + 1).parse().unwrap());
            }
            site.insert_page(page);
        }
        corpus.insert(site);

        let mut blocked = Website::new("https://blocked.gob.mx/".parse().unwrap());
        blocked.geo_restricted_to = Some(cc!("MX"));
        corpus.insert(blocked);
        corpus
    }

    #[test]
    fn depth_limit_is_respected() {
        let corpus = chain_corpus();
        let crawler = Crawler::with_depth(3);
        let out = crawler.crawl(&corpus, &"https://a.gov/p0".parse().unwrap(), None);
        // Depths 0..=3 -> pages p0..p3.
        assert_eq!(out.pages_visited, 4);
        assert!(out.log.entries.iter().all(|e| e.depth <= 3));
        // Each page contributes the doc + one resource.
        assert_eq!(out.log.entries.len(), 8);
    }

    #[test]
    fn full_depth_seven_reaches_eight_pages() {
        let corpus = chain_corpus();
        let out = Crawler::default().crawl(&corpus, &"https://a.gov/p0".parse().unwrap(), None);
        assert_eq!(out.pages_visited, 8, "landing + 7 levels");
    }

    #[test]
    fn page_cap_truncates() {
        let corpus = chain_corpus();
        let crawler = Crawler { max_depth: 7, max_pages: 3 };
        let out = crawler.crawl(&corpus, &"https://a.gov/p0".parse().unwrap(), None);
        assert!(out.truncated);
        assert_eq!(out.pages_visited, 3);
    }

    #[test]
    fn geo_blocked_fetch_is_a_failure() {
        let corpus = chain_corpus();
        let out = Crawler::default().crawl(
            &corpus,
            &"https://blocked.gob.mx/".parse().unwrap(),
            Some(cc!("US")),
        );
        assert_eq!(out.pages_visited, 0);
        assert_eq!(out.log.failures, 1);
        assert_eq!(out.failure_causes.geo_blocked, 1);
        assert_eq!(out.failure_causes.total(), 1);
        // A failed landing fetch is a typed crawl-stage fault.
        let err = out.landing_error.expect("landing fetch failed");
        assert_eq!(err.stage(), govhost_types::PipelineStage::Crawl);
        assert!(err.to_string().contains("blocked.gob.mx"));
        // From inside Mexico, the same crawl works.
        let ok = Crawler::default().crawl(
            &corpus,
            &"https://blocked.gob.mx/".parse().unwrap(),
            Some(cc!("MX")),
        );
        assert_eq!(ok.pages_visited, 1);
        assert!(ok.landing_error.is_none());
    }

    #[test]
    fn dead_inner_link_is_not_a_landing_error() {
        let mut corpus = chain_corpus();
        let host: govhost_types::Hostname = "a.gov".parse().unwrap();
        corpus
            .site_mut(&host)
            .unwrap()
            .page_mut("/p0")
            .unwrap()
            .links
            .push("https://a.gov/missing".parse().unwrap());
        let out = Crawler::default().crawl(&corpus, &"https://a.gov/p0".parse().unwrap(), None);
        assert_eq!(out.log.failures, 1);
        assert_eq!(out.failure_causes.not_found, 1);
        assert!(out.landing_error.is_none(), "inner dead links stay non-fatal");
        assert_eq!(out.pages_visited, 8);
    }

    #[test]
    fn cycles_do_not_loop() {
        let mut corpus = WebCorpus::new();
        let mut site = Website::new("https://loop.gov/a".parse().unwrap());
        let mut a = Page::empty("https://loop.gov/a".parse().unwrap(), 10);
        a.links.push("https://loop.gov/b".parse().unwrap());
        let mut b = Page::empty("https://loop.gov/b".parse().unwrap(), 10);
        b.links.push("https://loop.gov/a".parse().unwrap());
        site.insert_page(a);
        site.insert_page(b);
        corpus.insert(site);
        let out = Crawler::default().crawl(&corpus, &"https://loop.gov/a".parse().unwrap(), None);
        assert_eq!(out.pages_visited, 2);
    }

    #[test]
    fn external_links_are_followed() {
        let mut corpus = chain_corpus();
        let mut contractor = Website::new("https://contractor.example/".parse().unwrap());
        contractor.insert_page(Page::empty("https://contractor.example/".parse().unwrap(), 77));
        corpus.insert(contractor);
        let host: govhost_types::Hostname = "a.gov".parse().unwrap();
        corpus
            .site_mut(&host)
            .unwrap()
            .page_mut("/p0")
            .unwrap()
            .links
            .push("https://contractor.example/".parse().unwrap());
        let out = Crawler::default().crawl(&corpus, &"https://a.gov/p0".parse().unwrap(), None);
        assert!(out
            .log
            .entries
            .iter()
            .any(|e| e.url.hostname().as_str() == "contractor.example"));
    }

    #[test]
    fn parallel_matches_sequential() {
        let corpus = chain_corpus();
        let crawler = Crawler::default();
        let jobs: Vec<(Url, Option<CountryCode>)> = vec![
            ("https://a.gov/p0".parse().unwrap(), None),
            ("https://blocked.gob.mx/".parse().unwrap(), Some(cc!("MX"))),
            ("https://a.gov/p5".parse().unwrap(), None),
        ];
        let seq = crawl_sites_parallel(&corpus, &crawler, &jobs, 1);
        let par = crawl_sites_parallel(&corpus, &crawler, &jobs, 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.pages_visited, p.pages_visited);
            assert_eq!(s.log.entries, p.log.entries);
            assert_eq!(s.log.failures, p.log.failures);
        }
    }

    /// The streaming session and the materialized crawl are the same
    /// traversal: page-for-page, entry-for-entry, counter-for-counter.
    #[test]
    fn session_streams_exactly_what_crawl_materializes() {
        let corpus = chain_corpus();
        let crawler = Crawler::default();
        let landing: Url = "https://a.gov/p0".parse().unwrap();
        let out = crawler.crawl(&corpus, &landing, None);

        let mut session = crawler.session(&corpus, &landing, None);
        let mut streamed: Vec<HarEntry> = Vec::new();
        while let Some(visit) = session.next_page() {
            streamed.push(HarEntry {
                url: visit.url.clone(),
                bytes: visit.page.html_bytes,
                content_type: ContentType::Html,
                depth: visit.depth,
            });
            for res in &visit.page.resources {
                streamed.push(HarEntry {
                    url: res.url.clone(),
                    bytes: res.bytes,
                    content_type: res.content_type,
                    depth: visit.depth,
                });
            }
        }
        assert_eq!(streamed, out.log.entries);
        assert_eq!(session.pages_visited(), out.pages_visited);
        assert_eq!(session.failures(), out.log.failures);
        assert_eq!(session.failure_causes(), out.failure_causes);
        assert!(!session.truncated());
    }

    #[test]
    fn session_reports_landing_error_and_truncation() {
        let corpus = chain_corpus();
        let mut session = Crawler::default().session(
            &corpus,
            &"https://blocked.gob.mx/".parse().unwrap(),
            Some(cc!("US")),
        );
        assert!(session.next_page().is_none());
        assert_eq!(session.failures(), 1);
        let err = session.take_landing_error().expect("landing fetch failed");
        assert_eq!(err.stage(), govhost_types::PipelineStage::Crawl);
        assert!(session.take_landing_error().is_none(), "take consumes the fault");

        let capped = Crawler { max_depth: 7, max_pages: 3 };
        let mut session =
            capped.session(&corpus, &"https://a.gov/p0".parse().unwrap(), None);
        let mut pages = 0;
        while session.next_page().is_some() {
            pages += 1;
        }
        assert_eq!(pages, 3);
        assert!(session.truncated());
    }

    #[test]
    fn zero_thread_request_is_clamped() {
        let corpus = chain_corpus();
        let crawler = Crawler::default();
        let jobs = vec![("https://a.gov/p0".parse::<Url>().unwrap(), None)];
        let out = crawl_sites_parallel(&corpus, &crawler, &jobs, 0);
        assert_eq!(out.len(), 1);
    }
}

//! HAR-style capture of a crawl.
//!
//! Selenium in the paper consolidates each rendered page into an HTTP
//! Archive; the analysis then works URL-by-URL with transfer sizes. This
//! module is that artifact: a flat log of (URL, bytes, depth) entries plus
//! failure bookkeeping.

use crate::resource::ContentType;
use govhost_types::{Hostname, Url};
use std::collections::HashSet;

/// One captured request.
#[derive(Debug, Clone, PartialEq)]
pub struct HarEntry {
    /// The fetched URL (page document or subresource).
    pub url: Url,
    /// Transfer size.
    pub bytes: u64,
    /// Content type.
    pub content_type: ContentType,
    /// Crawl depth of the page that triggered the request (0 = landing).
    pub depth: u32,
}

/// The log of one site crawl.
#[derive(Debug, Clone, Default)]
pub struct HarLog {
    /// Captured entries, in fetch order.
    pub entries: Vec<HarEntry>,
    /// Pages that could not be fetched (geo-blocks, dead links).
    pub failures: u32,
}

impl HarLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful fetch.
    pub fn push(&mut self, entry: HarEntry) {
        self.entries.push(entry);
    }

    /// Record a failed fetch.
    pub fn record_failure(&mut self) {
        self.failures += 1;
    }

    /// Total bytes across all entries.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Unique URLs captured.
    pub fn unique_urls(&self) -> usize {
        self.entries.iter().map(|e| &e.url).collect::<HashSet<_>>().len()
    }

    /// Unique hostnames captured.
    pub fn unique_hostnames(&self) -> HashSet<&Hostname> {
        self.entries.iter().map(|e| e.url.hostname()).collect()
    }

    /// Fraction of entries captured at or below `depth`.
    pub fn fraction_within_depth(&self, depth: u32) -> f64 {
        if self.entries.is_empty() {
            return f64::NAN;
        }
        let within = self.entries.iter().filter(|e| e.depth <= depth).count();
        within as f64 / self.entries.len() as f64
    }

    /// Merge another log into this one.
    pub fn merge(&mut self, other: HarLog) {
        self.entries.extend(other.entries);
        self.failures += other.failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(url: &str, bytes: u64, depth: u32) -> HarEntry {
        HarEntry { url: url.parse().unwrap(), bytes, content_type: ContentType::Html, depth }
    }

    #[test]
    fn accounting() {
        let mut log = HarLog::new();
        log.push(entry("https://a.gov/", 100, 0));
        log.push(entry("https://a.gov/x", 200, 1));
        log.push(entry("https://a.gov/x", 200, 1)); // duplicate URL
        log.push(entry("https://cdn.b.net/app.js", 300, 0));
        log.record_failure();
        assert_eq!(log.total_bytes(), 800);
        assert_eq!(log.unique_urls(), 3);
        assert_eq!(log.unique_hostnames().len(), 2);
        assert_eq!(log.failures, 1);
    }

    #[test]
    fn depth_fractions() {
        let mut log = HarLog::new();
        for d in [0, 0, 0, 1, 2] {
            log.push(entry(&format!("https://a.gov/p{d}"), 1, d));
        }
        assert!((log.fraction_within_depth(0) - 0.6).abs() < 1e-12);
        assert!((log.fraction_within_depth(1) - 0.8).abs() < 1e-12);
        assert!((log.fraction_within_depth(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = HarLog::new();
        a.push(entry("https://a.gov/", 1, 0));
        let mut b = HarLog::new();
        b.push(entry("https://b.gov/", 2, 0));
        b.record_failure();
        a.merge(b);
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.failures, 1);
    }

    #[test]
    fn empty_log_depth_fraction_is_nan() {
        assert!(HarLog::new().fraction_within_depth(3).is_nan());
    }
}

//! HAR 1.2 JSON export.
//!
//! The paper consolidates each rendered page "into an HTTP Archive (HAR)
//! file" (§3.2). This module serializes a [`HarLog`] into the HAR 1.2
//! JSON structure (creator/entries/request/response with transfer sizes)
//! so crawl artifacts can be inspected with standard HAR tooling, and
//! provides a size-extracting reader for round-trip tests. JSON is
//! emitted by hand — the structure is small and fixed, and the workspace
//! deliberately avoids a serialization stack.

use crate::har::{HarEntry, HarLog};

/// Serialize a crawl log as HAR 1.2 JSON.
pub fn to_har_json(log: &HarLog) -> String {
    let mut out = String::with_capacity(log.entries.len() * 160 + 256);
    out.push_str(
        "{\n  \"log\": {\n    \"version\": \"1.2\",\n    \"creator\": {\"name\": \"govhost-crawler\", \"version\": \"0.1\"},\n    \"entries\": [\n",
    );
    for (i, entry) in log.entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "      {{\"request\": {{\"method\": \"GET\", \"url\": \"{url}\"}}, \"response\": {{\"status\": 200, \"content\": {{\"mimeType\": \"{mime}\", \"size\": {size}}}, \"_transferSize\": {size}}}, \"_depth\": {depth}}}",
            url = escape_json(&entry.url.to_string()),
            mime = entry.content_type,
            size = entry.bytes,
            depth = entry.depth,
        ));
    }
    out.push_str(&format!(
        "\n    ],\n    \"_failures\": {}\n  }}\n}}\n",
        log.failures
    ));
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal reader for our own HAR output: extracts `(url, size, depth)`
/// triples. Not a general JSON parser — a round-trip check for the
/// exporter and a convenience for tests and tools.
pub fn read_har_entries(json: &str) -> Vec<(String, u64, u32)> {
    let mut out = Vec::new();
    for chunk in json.split("\"request\"").skip(1) {
        let url = extract_str(chunk, "\"url\": \"");
        let size = extract_num(chunk, "\"size\": ");
        let depth = extract_num(chunk, "\"_depth\": ");
        if let (Some(url), Some(size), Some(depth)) = (url, size, depth) {
            out.push((url, size, depth as u32));
        }
    }
    out
}

fn extract_str(chunk: &str, key: &str) -> Option<String> {
    let start = chunk.find(key)? + key.len();
    let rest = &chunk[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn extract_num(chunk: &str, key: &str) -> Option<u64> {
    let start = chunk.find(key)? + key.len();
    let digits: String =
        chunk[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Convenience: export straight from entries.
pub fn entries_to_har_json(entries: &[HarEntry]) -> String {
    let mut log = HarLog::new();
    for e in entries {
        log.push(e.clone());
    }
    to_har_json(&log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ContentType;

    fn sample_log() -> HarLog {
        let mut log = HarLog::new();
        log.push(HarEntry {
            url: "https://www.gub.uy/".parse().unwrap(),
            bytes: 8192,
            content_type: ContentType::Html,
            depth: 0,
        });
        log.push(HarEntry {
            url: "https://cdn.example.net/app.js".parse().unwrap(),
            bytes: 90000,
            content_type: ContentType::Script,
            depth: 0,
        });
        log.push(HarEntry {
            url: "https://www.gub.uy/tramites".parse().unwrap(),
            bytes: 7000,
            content_type: ContentType::Html,
            depth: 1,
        });
        log.record_failure();
        log
    }

    #[test]
    fn exports_valid_structure() {
        let json = to_har_json(&sample_log());
        assert!(json.contains("\"version\": \"1.2\""));
        assert!(json.contains("govhost-crawler"));
        assert!(json.contains("https://www.gub.uy/"));
        assert!(json.contains("\"_failures\": 1"));
        // Balanced braces (cheap sanity check of the hand-rolled JSON).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn round_trips_sizes_and_depths() {
        let log = sample_log();
        let json = to_har_json(&log);
        let entries = read_har_entries(&json);
        assert_eq!(entries.len(), log.entries.len());
        for (parsed, original) in entries.iter().zip(&log.entries) {
            assert_eq!(parsed.0, original.url.to_string());
            assert_eq!(parsed.1, original.bytes);
            assert_eq!(parsed.2, original.depth);
        }
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("tab\there"), "tab\\u0009here");
        let round = extract_str(&format!("\"url\": \"{}\"", escape_json("a\"b\\c")), "\"url\": \"");
        assert_eq!(round.as_deref(), Some("a\"b\\c"));
    }

    #[test]
    fn empty_log_exports() {
        let json = to_har_json(&HarLog::new());
        assert!(json.contains("\"entries\": [\n\n    ]"));
        assert!(read_har_entries(&json).is_empty());
    }
}

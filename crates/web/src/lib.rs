#![warn(missing_docs)]
//! # govhost-web
//!
//! The simulated web and the measurement crawler:
//!
//! - websites as page trees with linked subresources and TLS certificates
//!   carrying Subject Alternative Names ([`site`], [`cert`], [`page`],
//!   [`resource`]),
//! - a corpus of sites addressable by hostname, with geo-restricted sites
//!   that only answer to domestic vantage points ([`corpus`]) — the reason
//!   the paper crawls through in-country VPNs (§3.2),
//! - HAR-style capture of everything a crawl fetched ([`har`]),
//! - VPN vantage points ([`vantage`]),
//! - a breadth-first crawler bounded at the paper's seven levels
//!   ([`crawler`]), plus a scoped-thread parallel executor for
//!   whole-country crawls.

pub mod cert;
pub mod corpus;
pub mod crawler;
pub mod har;
pub mod harjson;
pub mod page;
pub mod resource;
pub mod site;
pub mod vantage;

pub use cert::TlsCert;
pub use corpus::{FetchError, WebCorpus};
pub use crawler::{crawl_sites_parallel, CrawlOutcome, Crawler};
pub use har::{HarEntry, HarLog};
pub use harjson::{read_har_entries, to_har_json};
pub use page::Page;
pub use resource::{ContentType, Resource};
pub use site::Website;
pub use vantage::{VantagePoint, VpnProvider};

//! Pages: documents with subresources and navigable links.

use crate::resource::Resource;
use govhost_types::Url;

/// One renderable page.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The page's own URL.
    pub url: Url,
    /// Transfer size of the HTML document itself.
    pub html_bytes: u64,
    /// Subresources the page loads when rendered (scripts, images, ...).
    pub resources: Vec<Resource>,
    /// Links a crawler can navigate to (internal and external).
    pub links: Vec<Url>,
}

impl Page {
    /// A page with no resources or links.
    pub fn empty(url: Url, html_bytes: u64) -> Self {
        Self { url, html_bytes, resources: Vec::new(), links: Vec::new() }
    }

    /// Total bytes transferred rendering this page (document +
    /// subresources).
    pub fn total_bytes(&self) -> u64 {
        self.html_bytes + self.resources.iter().map(|r| r.bytes).sum::<u64>()
    }

    /// Links that stay on the same hostname.
    pub fn internal_links(&self) -> impl Iterator<Item = &Url> {
        self.links.iter().filter(move |l| l.hostname() == self.url.hostname())
    }

    /// Links that leave the hostname.
    pub fn external_links(&self) -> impl Iterator<Item = &Url> {
        self.links.iter().filter(move |l| l.hostname() != self.url.hostname())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{ContentType, Resource};

    #[test]
    fn byte_accounting() {
        let mut p = Page::empty("https://x.gov/a".parse().unwrap(), 10_000);
        p.resources.push(Resource::new(
            "https://x.gov/app.js".parse().unwrap(),
            5_000,
            ContentType::Script,
        ));
        p.resources.push(Resource::new(
            "https://cdn.y.net/logo.png".parse().unwrap(),
            7_000,
            ContentType::Image,
        ));
        assert_eq!(p.total_bytes(), 22_000);
    }

    #[test]
    fn link_partitioning() {
        let mut p = Page::empty("https://x.gov/".parse().unwrap(), 1);
        p.links.push("https://x.gov/services".parse().unwrap());
        p.links.push("https://other.org/about".parse().unwrap());
        assert_eq!(p.internal_links().count(), 1);
        assert_eq!(p.external_links().count(), 1);
    }
}

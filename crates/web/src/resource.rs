//! Page subresources.

use govhost_types::Url;
use std::fmt;

/// Coarse content types, enough to make byte-weight distributions
/// realistic (images and scripts dominate page weight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// HTML documents.
    Html,
    /// JavaScript.
    Script,
    /// CSS.
    Style,
    /// Raster/vector images.
    Image,
    /// Web fonts.
    Font,
    /// JSON / API payloads.
    Json,
    /// Anything else.
    Other,
}

impl fmt::Display for ContentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ContentType::Html => "text/html",
            ContentType::Script => "application/javascript",
            ContentType::Style => "text/css",
            ContentType::Image => "image/*",
            ContentType::Font => "font/*",
            ContentType::Json => "application/json",
            ContentType::Other => "application/octet-stream",
        };
        f.write_str(s)
    }
}

/// One subresource a page loads.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// The resource URL (may live on a different hostname than the page —
    /// that is exactly what the hosting analysis measures).
    pub url: Url,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Content type.
    pub content_type: ContentType,
}

impl Resource {
    /// Convenience constructor.
    pub fn new(url: Url, bytes: u64, content_type: ContentType) -> Self {
        Self { url, bytes, content_type }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_content_types() {
        assert_eq!(ContentType::Script.to_string(), "application/javascript");
        assert_eq!(ContentType::Html.to_string(), "text/html");
    }

    #[test]
    fn resource_carries_cross_host_urls() {
        let r = Resource::new(
            "https://cdn.thirdparty.net/app.js".parse().unwrap(),
            120_000,
            ContentType::Script,
        );
        assert_eq!(r.url.hostname().as_str(), "cdn.thirdparty.net");
        assert_eq!(r.bytes, 120_000);
    }
}

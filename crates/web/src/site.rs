//! Websites: a hostname's page tree plus its TLS certificate and access
//! policy.

use crate::cert::TlsCert;
use crate::page::Page;
use govhost_types::{CountryCode, Url};
use std::collections::HashMap;

/// A website served under one hostname.
#[derive(Debug, Clone)]
pub struct Website {
    /// The landing URL.
    pub landing: Url,
    /// The TLS certificate presented on HTTPS connections, if any.
    pub cert: Option<TlsCert>,
    /// Pages by path.
    pages: HashMap<String, Page>,
    /// When set, the site only answers requests from this country
    /// (the paper's footnote 1: Mexico's prodecon.gob.mx refuses
    /// non-domestic clients).
    pub geo_restricted_to: Option<CountryCode>,
}

impl Website {
    /// Create a site with an empty landing page.
    pub fn new(landing: Url) -> Self {
        let mut pages = HashMap::new();
        pages.insert(landing.path().to_string(), Page::empty(landing.clone(), 8_192));
        Self { landing, cert: None, pages, geo_restricted_to: None }
    }

    /// Insert (or replace) a page.
    ///
    /// # Panics
    /// Panics if the page's hostname differs from the site's.
    pub fn insert_page(&mut self, page: Page) {
        assert_eq!(
            page.url.hostname(),
            self.landing.hostname(),
            "page belongs to another hostname"
        );
        self.pages.insert(page.url.path().to_string(), page);
    }

    /// Fetch a page by path.
    pub fn page(&self, path: &str) -> Option<&Page> {
        self.pages.get(path)
    }

    /// Mutable page access (used by generators wiring links).
    pub fn page_mut(&mut self, path: &str) -> Option<&mut Page> {
        self.pages.get_mut(path)
    }

    /// The landing page.
    pub fn landing_page(&self) -> &Page {
        self.pages.get(self.landing.path()).expect("landing page always exists")
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Iterate over all pages.
    pub fn pages(&self) -> impl Iterator<Item = &Page> {
        self.pages.values()
    }

    /// Whether a client in `vantage` may fetch from this site.
    pub fn accessible_from(&self, vantage: Option<CountryCode>) -> bool {
        match self.geo_restricted_to {
            None => true,
            Some(required) => vantage == Some(required),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_types::cc;

    #[test]
    fn new_site_has_landing_page() {
        let s = Website::new("https://www.gob.mx/".parse().unwrap());
        assert_eq!(s.page_count(), 1);
        assert_eq!(s.landing_page().url, s.landing);
    }

    #[test]
    fn insert_and_lookup_pages() {
        let mut s = Website::new("https://www.gob.mx/".parse().unwrap());
        s.insert_page(Page::empty("https://www.gob.mx/tramites".parse().unwrap(), 1000));
        assert!(s.page("/tramites").is_some());
        assert!(s.page("/nope").is_none());
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    #[should_panic]
    fn foreign_page_rejected() {
        let mut s = Website::new("https://www.gob.mx/".parse().unwrap());
        s.insert_page(Page::empty("https://evil.example/".parse().unwrap(), 1));
    }

    #[test]
    fn geo_restriction() {
        let mut s = Website::new("https://www.prodecon.gob.mx/".parse().unwrap());
        assert!(s.accessible_from(None));
        s.geo_restricted_to = Some(cc!("MX"));
        assert!(s.accessible_from(Some(cc!("MX"))));
        assert!(!s.accessible_from(Some(cc!("US"))));
        assert!(!s.accessible_from(None));
    }
}

//! VPN vantage points.
//!
//! The study accesses every government site through a commercial VPN exit
//! inside the target country (§3.2, Table 9 lists which provider serves
//! which country). A vantage point here is simply "a client that appears
//! to be in country X via provider P"; the provider matters for the
//! dataset bookkeeping (Table 9) and for modelling countries where no
//! verifiable VPN exists (the sampling limitation of §4.1).

use govhost_types::CountryCode;
use std::fmt;

/// The commercial VPN services the study used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VpnProvider {
    /// NordVPN (49 of the 61 countries).
    Nord,
    /// Surfshark (10 countries).
    Surfshark,
    /// Hotspot Shield (2 countries).
    HotspotShield,
}

impl fmt::Display for VpnProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VpnProvider::Nord => "NordVPN",
            VpnProvider::Surfshark => "Surfshark",
            VpnProvider::HotspotShield => "Hotspot Shield",
        };
        f.write_str(s)
    }
}

/// A measurement client exiting in a specific country.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VantagePoint {
    /// Exit country.
    pub country: CountryCode,
    /// VPN service used to reach it.
    pub provider: VpnProvider,
}

impl VantagePoint {
    /// Convenience constructor.
    pub fn new(country: CountryCode, provider: VpnProvider) -> Self {
        Self { country, provider }
    }
}

impl fmt::Display for VantagePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} via {}", self.country, self.provider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_types::cc;

    #[test]
    fn display_forms() {
        let vp = VantagePoint::new(cc!("PK"), VpnProvider::Surfshark);
        assert_eq!(vp.to_string(), "PK via Surfshark");
        assert_eq!(VpnProvider::Nord.to_string(), "NordVPN");
    }
}

//! Property tests for the crawler over randomly-shaped site graphs: the
//! depth bound, the page cap, and visit-once semantics must hold for any
//! link structure, including cycles and dangling links.

use govhost_types::Url;
use govhost_web::crawler::Crawler;
use govhost_web::page::Page;
use govhost_web::site::Website;
use govhost_web::corpus::WebCorpus;
use proptest::prelude::*;

/// Build a random single-host site: `n` pages with arbitrary internal
/// links (possibly cyclic, possibly dangling).
fn arb_corpus() -> impl Strategy<Value = (WebCorpus, Url, usize)> {
    (2usize..25)
        .prop_flat_map(|n| {
            let links = proptest::collection::vec(
                proptest::collection::vec(0usize..(n + 3), 0..5), // +3 => dangling targets
                n,
            );
            (Just(n), links)
        })
        .prop_map(|(n, link_table)| {
            let mut site = Website::new("https://site.gov/p0".parse().unwrap());
            for (i, links) in link_table.iter().enumerate() {
                let mut page =
                    Page::empty(format!("https://site.gov/p{i}").parse().unwrap(), 100);
                for target in links {
                    page.links.push(format!("https://site.gov/p{target}").parse().unwrap());
                }
                site.insert_page(page);
            }
            let mut corpus = WebCorpus::new();
            corpus.insert(site);
            (corpus, "https://site.gov/p0".parse().unwrap(), n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn depth_bound_holds((corpus, landing, _n) in arb_corpus(), depth in 0u32..8) {
        let crawler = Crawler::with_depth(depth);
        let out = crawler.crawl(&corpus, &landing, None);
        prop_assert!(out.log.entries.iter().all(|e| e.depth <= depth));
    }

    #[test]
    fn pages_visited_at_most_once((corpus, landing, n) in arb_corpus()) {
        let out = Crawler::default().crawl(&corpus, &landing, None);
        // Every entry is a page document here (no subresources), so
        // entries == pages visited, and no URL repeats.
        prop_assert!(out.pages_visited <= n);
        let mut urls: Vec<_> = out.log.entries.iter().map(|e| e.url.clone()).collect();
        let before = urls.len();
        urls.sort();
        urls.dedup();
        prop_assert_eq!(urls.len(), before, "no page fetched twice");
    }

    #[test]
    fn page_cap_is_respected((corpus, landing, _n) in arb_corpus(), cap in 1usize..10) {
        let crawler = Crawler { max_depth: 7, max_pages: cap };
        let out = crawler.crawl(&corpus, &landing, None);
        prop_assert!(out.pages_visited <= cap);
    }

    #[test]
    fn dangling_links_become_failures_not_crashes((corpus, landing, n) in arb_corpus()) {
        let out = Crawler::default().crawl(&corpus, &landing, None);
        // Dangling targets (>= n) can only fail; the sum of successes and
        // failures is bounded by the reachable set.
        prop_assert!(out.pages_visited + out.log.failures as usize <= n + 3 * n * 5);
    }

    #[test]
    fn deeper_crawls_never_see_fewer_pages((corpus, landing, _n) in arb_corpus()) {
        let mut last = 0;
        for depth in [0u32, 1, 2, 4, 7] {
            let out = Crawler::with_depth(depth).crawl(&corpus, &landing, None);
            prop_assert!(out.pages_visited >= last);
            last = out.pages_visited;
        }
    }
}

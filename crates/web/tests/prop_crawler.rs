//! Property tests for the crawler over randomly-shaped site graphs: the
//! depth bound, the page cap, and visit-once semantics must hold for any
//! link structure, including cycles and dangling links. On the in-repo
//! harness.

use govhost_harness::{gens, prop_assert, prop_assert_eq, Config, Gen};
use govhost_types::Url;
use govhost_web::corpus::WebCorpus;
use govhost_web::crawler::Crawler;
use govhost_web::page::Page;
use govhost_web::site::Website;

const REGRESSIONS: &str = "tests/regressions/prop_crawler.txt";

fn cfg(name: &str) -> Config {
    Config::new(name).cases(256).regressions(REGRESSIONS)
}

/// Build a random single-host site: `n` pages with arbitrary internal
/// links (possibly cyclic, possibly dangling).
fn arb_corpus() -> Gen<(WebCorpus, Url, usize)> {
    gens::usize_range(2, 25)
        .flat_map(|n| {
            // Each page links to 0-4 targets in 0..n+3 (+3 => dangling).
            gens::vec(gens::vec(gens::usize_range(0, n + 3), 0, 4), n, n)
        })
        .map(|link_table| {
            let n = link_table.len();
            let mut site = Website::new("https://site.gov/p0".parse().unwrap());
            for (i, links) in link_table.iter().enumerate() {
                let mut page =
                    Page::empty(format!("https://site.gov/p{i}").parse().unwrap(), 100);
                for target in links {
                    page.links.push(format!("https://site.gov/p{target}").parse().unwrap());
                }
                site.insert_page(page);
            }
            let mut corpus = WebCorpus::new();
            corpus.insert(site);
            (corpus, "https://site.gov/p0".parse().unwrap(), n)
        })
}

#[test]
fn depth_bound_holds() {
    let inputs = arb_corpus().zip(gens::u64_range(0, 8));
    cfg("depth_bound_holds").run(&inputs, |((corpus, landing, _n), depth)| {
        let depth = *depth as u32;
        let crawler = Crawler::with_depth(depth);
        let out = crawler.crawl(corpus, landing, None);
        prop_assert!(out.log.entries.iter().all(|e| e.depth <= depth));
        Ok(())
    });
}

#[test]
fn pages_visited_at_most_once() {
    cfg("pages_visited_at_most_once").run(&arb_corpus(), |(corpus, landing, n)| {
        let out = Crawler::default().crawl(corpus, landing, None);
        // Every entry is a page document here (no subresources), so
        // entries == pages visited, and no URL repeats.
        prop_assert!(out.pages_visited <= *n);
        let mut urls: Vec<_> = out.log.entries.iter().map(|e| e.url.clone()).collect();
        let before = urls.len();
        urls.sort();
        urls.dedup();
        prop_assert_eq!(urls.len(), before, "no page fetched twice");
        Ok(())
    });
}

#[test]
fn page_cap_is_respected() {
    let inputs = arb_corpus().zip(gens::usize_range(1, 10));
    cfg("page_cap_is_respected").run(&inputs, |((corpus, landing, _n), cap)| {
        let crawler = Crawler { max_depth: 7, max_pages: *cap };
        let out = crawler.crawl(corpus, landing, None);
        prop_assert!(out.pages_visited <= *cap);
        Ok(())
    });
}

#[test]
fn dangling_links_become_failures_not_crashes() {
    cfg("dangling_links_become_failures_not_crashes").run(&arb_corpus(), |(corpus, landing, n)| {
        let out = Crawler::default().crawl(corpus, landing, None);
        // Dangling targets (>= n) can only fail; the sum of successes and
        // failures is bounded by the reachable set.
        prop_assert!(out.pages_visited + out.log.failures as usize <= n + 3 * n * 5);
        Ok(())
    });
}

#[test]
fn deeper_crawls_never_see_fewer_pages() {
    cfg("deeper_crawls_never_see_fewer_pages").run(&arb_corpus(), |(corpus, landing, _n)| {
        let mut last = 0;
        for depth in [0u32, 1, 2, 4, 7] {
            let out = Crawler::with_depth(depth).crawl(corpus, landing, None);
            prop_assert!(out.pages_visited >= last);
            last = out.pages_visited;
        }
        Ok(())
    });
}

//! Calibration self-check: does a generated world actually embody the
//! paper's published statistics?
//!
//! The generator promises that Table 8 volumes (scaled), hosting profiles,
//! and the pinned bilateral cases hold in the concrete world. This module
//! verifies those promises against the *ground truth* (not the pipeline —
//! pipeline recovery is `govhost-core`'s job), producing a report the
//! tests and the `repro` harness can assert on.

use crate::countries::COUNTRIES;
use crate::profiles::HostingProfile;
use crate::world::World;
use govhost_types::ProviderCategory;

/// One calibration check's outcome.
#[derive(Debug, Clone)]
pub struct CalibrationCheck {
    /// What was checked.
    pub name: String,
    /// Target value.
    pub expected: f64,
    /// Value found in the generated world.
    pub actual: f64,
    /// Acceptable absolute deviation.
    pub tolerance: f64,
}

impl CalibrationCheck {
    /// Whether the check passes.
    pub fn ok(&self) -> bool {
        (self.actual - self.expected).abs() <= self.tolerance
    }
}

/// The full calibration report.
#[derive(Debug, Clone, Default)]
pub struct CalibrationReport {
    /// Every check performed.
    pub checks: Vec<CalibrationCheck>,
}

impl CalibrationReport {
    /// Run all checks against a world.
    pub fn check(world: &World) -> CalibrationReport {
        let mut report = CalibrationReport::default();
        let scale = world.params.scale;

        // Volumes: hostname counts per country track Table 8 × scale.
        for row in COUNTRIES {
            let code = row.cc();
            let expected = if row.hostnames == 0 {
                0.0
            } else {
                (row.hostnames as f64 * scale).max(3.0)
            };
            let actual = world
                .truth
                .hosts
                .values()
                .filter(|t| t.country == code && !t.san_only)
                .count() as f64;
            report.checks.push(CalibrationCheck {
                name: format!("{code} hostname volume"),
                expected,
                actual,
                // Rounding, category apportionment and the FR special case
                // move counts by a few.
                tolerance: (expected * 0.25).max(3.0),
            });
        }

        // Category weights: per-country URL-weight shares track profiles.
        for row in COUNTRIES.iter().filter(|r| r.hostnames > 0) {
            let code = row.cc();
            let profile = HostingProfile::for_country(row)
                .drifted(world.params.third_party_drift);
            let mut weights = [0.0f64; 4];
            let mut total = 0.0;
            for t in world.truth.hosts.values().filter(|t| t.country == code) {
                // Ground truth has no per-host weight; approximate with
                // counts (weights are near-uniform within categories).
                weights[t.category.index()] += 1.0;
                total += 1.0;
            }
            if total < 8.0 {
                continue; // too few hosts for shares to mean anything
            }
            let govt_share = weights[ProviderCategory::GovtSoe.index()] / total;
            report.checks.push(CalibrationCheck {
                name: format!("{code} Govt&SOE hostname share"),
                expected: profile.url_shares[0],
                actual: govt_share,
                tolerance: 0.22,
            });
        }

        // Pinned special case: France → New Caledonia exists.
        let gouv_nc: govhost_types::Hostname = "gouv.nc".parse().expect("static");
        let fr_nc = world.truth.host(&gouv_nc).map(|t| {
            (t.country.as_str() == "FR" && t.location.as_str() == "NC") as u32 as f64
        });
        report.checks.push(CalibrationCheck {
            name: "France gouv.nc hosted in NC".into(),
            expected: 1.0,
            actual: fr_nc.unwrap_or(0.0),
            tolerance: 0.0,
        });

        // Anycast share of servers near the paper's 10%.
        let servers = world.registry.servers();
        let anycast = servers.iter().filter(|s| s.anycast).count() as f64;
        report.checks.push(CalibrationCheck {
            name: "anycast server share".into(),
            expected: 0.10,
            actual: anycast / servers.len().max(1) as f64,
            tolerance: 0.08,
        });

        // Provider assignments hit Fig. 10's headline counts exactly.
        for (asn, expected) in [(13335u32, 49.0), (16509, 31.0), (8075, 28.0)] {
            let actual = world
                .truth
                .provider_assignments
                .get(&govhost_types::Asn(asn))
                .map(|v| v.len() as f64)
                .unwrap_or(0.0);
            report.checks.push(CalibrationCheck {
                name: format!("AS{asn} assigned-country count"),
                expected,
                actual,
                tolerance: 0.0,
            });
        }

        report
    }

    /// Checks that failed.
    pub fn failures(&self) -> Vec<&CalibrationCheck> {
        self.checks.iter().filter(|c| !c.ok()).collect()
    }

    /// Pass rate in `[0, 1]`.
    pub fn pass_rate(&self) -> f64 {
        if self.checks.is_empty() {
            return f64::NAN;
        }
        1.0 - self.failures().len() as f64 / self.checks.len() as f64
    }

    /// Human-readable summary (failures listed first).
    pub fn render(&self) -> String {
        let mut out = format!(
            "calibration: {}/{} checks pass ({:.0}%)\n",
            self.checks.len() - self.failures().len(),
            self.checks.len(),
            self.pass_rate() * 100.0
        );
        for c in self.failures() {
            out.push_str(&format!(
                "  FAIL {}: expected {:.3}±{:.3}, got {:.3}\n",
                c.name, c.expected, c.tolerance, c.actual
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GenParams;

    #[test]
    fn tiny_world_calibrates() {
        let world = World::generate(&GenParams::tiny());
        let report = CalibrationReport::check(&world);
        assert!(report.checks.len() > 60, "checks: {}", report.checks.len());
        assert!(
            report.pass_rate() > 0.9,
            "calibration pass rate {:.2}:\n{}",
            report.pass_rate(),
            report.render()
        );
    }

    #[test]
    fn provider_assignment_checks_are_exact() {
        let world = World::generate(&GenParams::tiny());
        let report = CalibrationReport::check(&world);
        for c in &report.checks {
            if c.name.contains("assigned-country") {
                assert!(c.ok(), "{}: {} != {}", c.name, c.actual, c.expected);
            }
        }
    }

    #[test]
    fn drift_shifts_expected_shares_consistently() {
        let world = World::generate(&GenParams { third_party_drift: 0.3, ..GenParams::tiny() });
        let report = CalibrationReport::check(&world);
        // The report compares against *drifted* profiles, so it should
        // still pass under drift.
        assert!(
            report.pass_rate() > 0.85,
            "drifted calibration:\n{}",
            report.render()
        );
    }
}

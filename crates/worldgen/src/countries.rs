//! The study's country sample: the paper's Tables 8 and 9 embedded as
//! static data, extended with the geographic coordinates and development
//! indices the substrate and the App. E regression need.
//!
//! `landing`, `internal` and `hostnames` are the real per-country dataset
//! volumes from Table 8; EGDI/HDI/IUI/population share and the VPN
//! provider are from Table 9. IDI / economic-freedom / GDP-per-capita /
//! NRI values are public 2023 figures (approximate), used only as App. E
//! regression features. Coordinates are each country's capital plus a far
//! city — the basis for the per-country road-distance latency thresholds
//! (§3.5) and for placing servers and probes.

use govhost_netsim::coords::{City, GeoPoint};
use govhost_types::{CountryCode, Region};
use govhost_web::vantage::VpnProvider;

/// Static per-country data.
#[derive(Debug, Clone, Copy)]
pub struct CountryRow {
    /// ISO alpha-2 code.
    pub code: &'static str,
    /// Display name.
    pub name: &'static str,
    /// World Bank region.
    pub region: Region,
    /// E-Government Development Index (Table 9).
    pub egdi: f64,
    /// Human Development Index (Table 9).
    pub hdi: f64,
    /// Internet-penetration rate, percent (Table 9).
    pub iui: f64,
    /// Share of the world's Internet population, percent (Table 9).
    pub pop_share: f64,
    /// VPN service used for this country (Table 9).
    pub vpn: VpnProvider,
    /// Landing URLs collected (Table 8).
    pub landing: u32,
    /// Internal URLs collected (Table 8).
    pub internal: u32,
    /// Unique government hostnames (Table 8).
    pub hostnames: u32,
    /// Capital (name, lat, lon).
    pub capital: (&'static str, f64, f64),
    /// A far city (name, lat, lon) — the other end of the country's
    /// intercity-distance threshold.
    pub far_city: (&'static str, f64, f64),
    /// ICT Development Index (~0..10).
    pub idi: f64,
    /// Heritage Economic Freedom Index (~0..100).
    pub efi: f64,
    /// GDP per capita, thousands of USD.
    pub gdp_k: f64,
    /// Network Readiness Index (~0..100).
    pub nri: f64,
}

impl CountryRow {
    /// Country code as a typed value.
    pub fn cc(&self) -> CountryCode {
        self.code.parse().expect("static country codes are valid")
    }

    /// Capital as a [`City`].
    pub fn capital_city(&self) -> City {
        City::new(self.capital.0, self.cc(), self.capital.1, self.capital.2)
    }

    /// Far city as a [`City`].
    pub fn far_city_city(&self) -> City {
        City::new(self.far_city.0, self.cc(), self.far_city.1, self.far_city.2)
    }

    /// Great-circle distance between the two reference cities, km.
    pub fn intercity_km(&self) -> f64 {
        GeoPoint::new(self.capital.1, self.capital.2)
            .distance_km(&GeoPoint::new(self.far_city.1, self.far_city.2))
    }

    /// Absolute Internet users, millions (share of a ~5.3B-user world).
    pub fn internet_users_m(&self) -> f64 {
        self.pop_share * 53.0
    }
}

use Region::*;
use VpnProvider::{HotspotShield as HS, Nord, Surfshark as Surf};

/// The 61 studied countries (Tables 8 & 9).
pub const COUNTRIES: &[CountryRow] = &[
    // ---- North America ----
    CountryRow { code: "US", name: "United States", region: NorthAmerica, egdi: 0.915, hdi: 0.921, iui: 92.0, pop_share: 5.760, vpn: Nord, landing: 1340, internal: 38702, hostnames: 2343, capital: ("Washington", 38.90, -77.04), far_city: ("Los Angeles", 34.05, -118.24), idi: 8.67, efi: 78.74, gdp_k: 76.3, nri: 82.22 },
    CountryRow { code: "CA", name: "Canada", region: NorthAmerica, egdi: 0.851, hdi: 0.936, iui: 93.0, pop_share: 0.685, vpn: Nord, landing: 216, internal: 6626, hostnames: 127, capital: ("Ottawa", 45.42, -75.70), far_city: ("Vancouver", 49.28, -123.12), idi: 9.49, efi: 66.18, gdp_k: 55.0, nri: 75.22 },
    // ---- Latin America and the Caribbean ----
    CountryRow { code: "BR", name: "Brazil", region: LatinAmericaCaribbean, egdi: 0.791, hdi: 0.754, iui: 81.0, pop_share: 3.285, vpn: Nord, landing: 272, internal: 15711, hostnames: 212, capital: ("Brasilia", -15.79, -47.88), far_city: ("Manaus", -3.12, -60.02), idi: 5.33, efi: 54.22, gdp_k: 8.9, nri: 61.69 },
    CountryRow { code: "MX", name: "Mexico", region: LatinAmericaCaribbean, egdi: 0.747, hdi: 0.758, iui: 76.0, pop_share: 2.036, vpn: Nord, landing: 317, internal: 9418, hostnames: 140, capital: ("Mexico City", 19.43, -99.13), far_city: ("Tijuana", 32.51, -117.04), idi: 4.56, efi: 59.50, gdp_k: 11.5, nri: 45.73 },
    CountryRow { code: "AR", name: "Argentina", region: LatinAmericaCaribbean, egdi: 0.820, hdi: 0.842, iui: 88.0, pop_share: 0.775, vpn: Nord, landing: 201, internal: 6238, hostnames: 100, capital: ("Buenos Aires", -34.60, -58.38), far_city: ("Ushuaia", -54.80, -68.30), idi: 7.29, efi: 47.98, gdp_k: 13.7, nri: 59.47 },
    CountryRow { code: "CL", name: "Chile", region: LatinAmericaCaribbean, egdi: 0.838, hdi: 0.855, iui: 90.0, pop_share: 0.347, vpn: Nord, landing: 448, internal: 24571, hostnames: 434, capital: ("Santiago", -33.45, -70.67), far_city: ("Punta Arenas", -53.16, -70.91), idi: 7.68, efi: 62.81, gdp_k: 15.4, nri: 61.53 },
    CountryRow { code: "BO", name: "Bolivia", region: LatinAmericaCaribbean, egdi: 0.617, hdi: 0.692, iui: 66.0, pop_share: 0.164, vpn: Surf, landing: 194, internal: 12842, hostnames: 189, capital: ("La Paz", -16.50, -68.15), far_city: ("Santa Cruz", -17.78, -63.18), idi: 3.57, efi: 45.99, gdp_k: 3.6, nri: 40.46 },
    CountryRow { code: "PY", name: "Paraguay", region: LatinAmericaCaribbean, egdi: 0.633, hdi: 0.717, iui: 76.0, pop_share: 0.1139, vpn: Surf, landing: 146, internal: 6744, hostnames: 133, capital: ("Asuncion", -25.26, -57.58), far_city: ("Ciudad del Este", -25.51, -54.61), idi: 3.76, efi: 60.22, gdp_k: 6.2, nri: 50.41 },
    CountryRow { code: "CR", name: "Costa Rica", region: LatinAmericaCaribbean, egdi: 0.766, hdi: 0.809, iui: 83.0, pop_share: 0.082, vpn: Nord, landing: 196, internal: 12231, hostnames: 176, capital: ("San Jose", 9.93, -84.08), far_city: ("Liberia", 10.63, -85.44), idi: 5.72, efi: 64.48, gdp_k: 13.2, nri: 48.99 },
    CountryRow { code: "UY", name: "Uruguay", region: LatinAmericaCaribbean, egdi: 0.839, hdi: 0.809, iui: 90.0, pop_share: 0.0602, vpn: Surf, landing: 67, internal: 4322, hostnames: 27, capital: ("Montevideo", -34.90, -56.16), far_city: ("Salto", -31.38, -57.97), idi: 7.63, efi: 70.48, gdp_k: 20.8, nri: 57.76 },
    // ---- Europe and Central Asia ----
    CountryRow { code: "RU", name: "Russia", region: EuropeCentralAsia, egdi: 0.816, hdi: 0.822, iui: 90.0, pop_share: 2.299, vpn: HS, landing: 106, internal: 5813, hostnames: 46, capital: ("Moscow", 55.76, 37.62), far_city: ("Vladivostok", 43.12, 131.89), idi: 5.87, efi: 53.09, gdp_k: 15.3, nri: 63.44 },
    CountryRow { code: "DE", name: "Germany", region: EuropeCentralAsia, egdi: 0.877, hdi: 0.942, iui: 92.0, pop_share: 1.459, vpn: Nord, landing: 777, internal: 28841, hostnames: 451, capital: ("Berlin", 52.52, 13.40), far_city: ("Munich", 48.14, 11.58), idi: 9.42, efi: 65.87, gdp_k: 48.7, nri: 84.28 },
    CountryRow { code: "TR", name: "Turkey", region: EuropeCentralAsia, egdi: 0.798, hdi: 0.838, iui: 83.0, pop_share: 1.3371, vpn: Nord, landing: 226, internal: 14817, hostnames: 228, capital: ("Ankara", 39.93, 32.86), far_city: ("Izmir", 38.42, 27.14), idi: 6.50, efi: 63.64, gdp_k: 10.6, nri: 59.84 },
    CountryRow { code: "GB", name: "United Kingdom", region: EuropeCentralAsia, egdi: 0.914, hdi: 0.929, iui: 97.0, pop_share: 1.200, vpn: Nord, landing: 373, internal: 9005, hostnames: 320, capital: ("London", 51.51, -0.13), far_city: ("Glasgow", 55.86, -4.25), idi: 8.24, efi: 71.83, gdp_k: 45.9, nri: 71.22 },
    CountryRow { code: "FR", name: "France", region: EuropeCentralAsia, egdi: 0.883, hdi: 0.903, iui: 85.0, pop_share: 1.114, vpn: Nord, landing: 669, internal: 9705, hostnames: 238, capital: ("Paris", 48.86, 2.35), far_city: ("Marseille", 43.30, 5.37), idi: 9.82, efi: 62.54, gdp_k: 40.9, nri: 87.82 },
    CountryRow { code: "IT", name: "Italy", region: EuropeCentralAsia, egdi: 0.838, hdi: 0.895, iui: 85.0, pop_share: 1.011, vpn: Nord, landing: 129, internal: 8518, hostnames: 123, capital: ("Rome", 41.90, 12.50), far_city: ("Milan", 45.46, 9.19), idi: 6.76, efi: 67.75, gdp_k: 34.2, nri: 66.87 },
    CountryRow { code: "ES", name: "Spain", region: EuropeCentralAsia, egdi: 0.884, hdi: 0.905, iui: 94.0, pop_share: 0.802, vpn: Nord, landing: 251, internal: 14602, hostnames: 175, capital: ("Madrid", 40.42, -3.70), far_city: ("Barcelona", 41.39, 2.17), idi: 9.66, efi: 59.36, gdp_k: 29.7, nri: 66.35 },
    CountryRow { code: "UA", name: "Ukraine", region: EuropeCentralAsia, egdi: 0.803, hdi: 0.773, iui: 79.0, pop_share: 0.7545, vpn: Nord, landing: 93, internal: 3928, hostnames: 98, capital: ("Kyiv", 50.45, 30.52), far_city: ("Lviv", 49.84, 24.03), idi: 4.49, efi: 46.94, gdp_k: 4.8, nri: 59.50 },
    CountryRow { code: "PL", name: "Poland", region: EuropeCentralAsia, egdi: 0.844, hdi: 0.876, iui: 87.0, pop_share: 0.640, vpn: Nord, landing: 594, internal: 29699, hostnames: 470, capital: ("Warsaw", 52.23, 21.01), far_city: ("Wroclaw", 51.11, 17.03), idi: 8.24, efi: 66.74, gdp_k: 18.0, nri: 65.05 },
    CountryRow { code: "KZ", name: "Kazakhstan", region: EuropeCentralAsia, egdi: 0.863, hdi: 0.811, iui: 92.0, pop_share: 0.304, vpn: Surf, landing: 52, internal: 648, hostnames: 16, capital: ("Astana", 51.17, 71.45), far_city: ("Almaty", 43.26, 76.93), idi: 7.33, efi: 63.85, gdp_k: 11.2, nri: 49.59 },
    CountryRow { code: "NL", name: "Netherlands", region: EuropeCentralAsia, egdi: 0.938, hdi: 0.941, iui: 93.0, pop_share: 0.302, vpn: Nord, landing: 1293, internal: 39026, hostnames: 966, capital: ("Amsterdam", 52.37, 4.90), far_city: ("Maastricht", 50.85, 5.69), idi: 8.73, efi: 84.49, gdp_k: 57.0, nri: 89.38 },
    CountryRow { code: "RO", name: "Romania", region: EuropeCentralAsia, egdi: 0.762, hdi: 0.821, iui: 86.0, pop_share: 0.2738, vpn: Nord, landing: 65, internal: 3427, hostnames: 49, capital: ("Bucharest", 44.43, 26.10), far_city: ("Cluj-Napoca", 46.77, 23.59), idi: 7.66, efi: 60.40, gdp_k: 15.8, nri: 66.65 },
    CountryRow { code: "BE", name: "Belgium", region: EuropeCentralAsia, egdi: 0.827, hdi: 0.937, iui: 94.0, pop_share: 0.198, vpn: Nord, landing: 994, internal: 217598, hostnames: 637, capital: ("Brussels", 50.85, 4.35), far_city: ("Antwerp", 51.22, 4.40), idi: 8.46, efi: 67.93, gdp_k: 49.9, nri: 87.75 },
    CountryRow { code: "SE", name: "Sweden", region: EuropeCentralAsia, egdi: 0.941, hdi: 0.947, iui: 95.0, pop_share: 0.183, vpn: Nord, landing: 335, internal: 9110, hostnames: 285, capital: ("Stockholm", 59.33, 18.07), far_city: ("Kiruna", 67.86, 20.23), idi: 8.32, efi: 80.13, gdp_k: 56.0, nri: 71.23 },
    CountryRow { code: "CZ", name: "Czechia", region: EuropeCentralAsia, egdi: 0.809, hdi: 0.889, iui: 85.0, pop_share: 0.1719, vpn: Nord, landing: 49, internal: 2153, hostnames: 46, capital: ("Prague", 50.08, 14.44), far_city: ("Ostrava", 49.82, 18.26), idi: 5.91, efi: 78.39, gdp_k: 26.8, nri: 77.18 },
    CountryRow { code: "PT", name: "Portugal", region: EuropeCentralAsia, egdi: 0.827, hdi: 0.866, iui: 84.0, pop_share: 0.165, vpn: Nord, landing: 295, internal: 15809, hostnames: 253, capital: ("Lisbon", 38.72, -9.14), far_city: ("Porto", 41.15, -8.61), idi: 7.30, efi: 75.80, gdp_k: 24.5, nri: 68.51 },
    CountryRow { code: "HU", name: "Hungary", region: EuropeCentralAsia, egdi: 0.783, hdi: 0.846, iui: 90.0, pop_share: 0.1584, vpn: Nord, landing: 109, internal: 204042, hostnames: 70, capital: ("Budapest", 47.50, 19.04), far_city: ("Debrecen", 47.53, 21.63), idi: 7.89, efi: 71.09, gdp_k: 18.1, nri: 52.66 },
    CountryRow { code: "CH", name: "Switzerland", region: EuropeCentralAsia, egdi: 0.875, hdi: 0.962, iui: 96.0, pop_share: 0.155, vpn: Nord, landing: 83, internal: 3225, hostnames: 25, capital: ("Bern", 46.95, 7.45), far_city: ("Geneva", 46.20, 6.14), idi: 8.40, efi: 82.01, gdp_k: 93.3, nri: 73.80 },
    CountryRow { code: "GR", name: "Greece", region: EuropeCentralAsia, egdi: 0.846, hdi: 0.887, iui: 83.0, pop_share: 0.150, vpn: Nord, landing: 91, internal: 6025, hostnames: 88, capital: ("Athens", 37.98, 23.73), far_city: ("Thessaloniki", 40.64, 22.94), idi: 7.51, efi: 62.80, gdp_k: 20.9, nri: 53.94 },
    CountryRow { code: "RS", name: "Serbia", region: EuropeCentralAsia, egdi: 0.824, hdi: 0.802, iui: 84.0, pop_share: 0.125, vpn: Nord, landing: 66, internal: 3295, hostnames: 67, capital: ("Belgrade", 44.79, 20.45), far_city: ("Nis", 43.32, 21.90), idi: 6.12, efi: 68.35, gdp_k: 9.2, nri: 44.70 },
    CountryRow { code: "DK", name: "Denmark", region: EuropeCentralAsia, egdi: 0.972, hdi: 0.948, iui: 98.0, pop_share: 0.105, vpn: Nord, landing: 110, internal: 2922, hostnames: 110, capital: ("Copenhagen", 55.68, 12.57), far_city: ("Aalborg", 57.05, 9.92), idi: 8.99, efi: 71.97, gdp_k: 67.8, nri: 92.17 },
    CountryRow { code: "NO", name: "Norway", region: EuropeCentralAsia, egdi: 0.888, hdi: 0.961, iui: 99.0, pop_share: 0.099, vpn: Nord, landing: 162, internal: 4382, hostnames: 158, capital: ("Oslo", 59.91, 10.75), far_city: ("Tromso", 69.65, 18.96), idi: 10.00, efi: 83.09, gdp_k: 106.1, nri: 74.74 },
    CountryRow { code: "BG", name: "Bulgaria", region: EuropeCentralAsia, egdi: 0.777, hdi: 0.795, iui: 79.0, pop_share: 0.0886, vpn: Nord, landing: 144, internal: 5798, hostnames: 75, capital: ("Sofia", 42.70, 23.32), far_city: ("Varna", 43.21, 27.92), idi: 6.54, efi: 75.71, gdp_k: 13.4, nri: 63.43 },
    CountryRow { code: "GE", name: "Georgia", region: EuropeCentralAsia, egdi: 0.750, hdi: 0.802, iui: 79.0, pop_share: 0.0669, vpn: Nord, landing: 73, internal: 2226, hostnames: 61, capital: ("Tbilisi", 41.72, 44.78), far_city: ("Batumi", 41.65, 41.64), idi: 6.01, efi: 67.05, gdp_k: 6.7, nri: 56.28 },
    CountryRow { code: "MD", name: "Moldova", region: EuropeCentralAsia, egdi: 0.725, hdi: 0.767, iui: 60.0, pop_share: 0.0566, vpn: Nord, landing: 50, internal: 3464, hostnames: 24, capital: ("Chisinau", 47.01, 28.86), far_city: ("Balti", 47.76, 27.93), idi: 6.64, efi: 68.36, gdp_k: 5.7, nri: 50.54 },
    CountryRow { code: "BA", name: "Bosnia", region: EuropeCentralAsia, egdi: 0.626, hdi: 0.780, iui: 79.0, pop_share: 0.0522, vpn: Nord, landing: 59, internal: 2929, hostnames: 58, capital: ("Sarajevo", 43.86, 18.41), far_city: ("Banja Luka", 44.77, 17.19), idi: 5.65, efi: 58.21, gdp_k: 7.6, nri: 50.21 },
    CountryRow { code: "AL", name: "Albania", region: EuropeCentralAsia, egdi: 0.741, hdi: 0.796, iui: 83.0, pop_share: 0.0404, vpn: Nord, landing: 80, internal: 5536, hostnames: 79, capital: ("Tirana", 41.33, 19.82), far_city: ("Vlore", 40.47, 19.49), idi: 6.10, efi: 70.53, gdp_k: 6.8, nri: 52.15 },
    CountryRow { code: "LV", name: "Latvia", region: EuropeCentralAsia, egdi: 0.860, hdi: 0.863, iui: 91.0, pop_share: 0.031, vpn: Nord, landing: 291, internal: 13263, hostnames: 239, capital: ("Riga", 56.95, 24.11), far_city: ("Daugavpils", 55.87, 26.54), idi: 8.55, efi: 69.27, gdp_k: 21.9, nri: 63.29 },
    CountryRow { code: "EE", name: "Estonia", region: EuropeCentralAsia, egdi: 0.939, hdi: 0.890, iui: 91.0, pop_share: 0.024, vpn: Nord, landing: 118, internal: 9871, hostnames: 119, capital: ("Tallinn", 59.44, 24.75), far_city: ("Tartu", 58.38, 26.73), idi: 6.62, efi: 87.66, gdp_k: 28.2, nri: 67.67 },
    // ---- East Asia and Pacific ----
    CountryRow { code: "CN", name: "China", region: EastAsiaPacific, egdi: 0.812, hdi: 0.768, iui: 76.0, pop_share: 18.6404, vpn: HS, landing: 193, internal: 6195, hostnames: 190, capital: ("Beijing", 39.90, 116.41), far_city: ("Urumqi", 43.83, 87.62), idi: 6.72, efi: 46.24, gdp_k: 12.7, nri: 73.76 },
    CountryRow { code: "ID", name: "Indonesia", region: EastAsiaPacific, egdi: 0.716, hdi: 0.705, iui: 66.0, pop_share: 3.9163, vpn: Nord, landing: 76, internal: 3690, hostnames: 79, capital: ("Jakarta", -6.21, 106.85), far_city: ("Jayapura", -2.53, 140.72), idi: 3.39, efi: 65.72, gdp_k: 4.8, nri: 50.82 },
    CountryRow { code: "JP", name: "Japan", region: EastAsiaPacific, egdi: 0.900, hdi: 0.925, iui: 83.0, pop_share: 2.1878, vpn: Nord, landing: 93, internal: 3635, hostnames: 75, capital: ("Tokyo", 35.68, 139.69), far_city: ("Sapporo", 43.06, 141.35), idi: 9.56, efi: 71.11, gdp_k: 33.8, nri: 84.14 },
    CountryRow { code: "VN", name: "Vietnam", region: EastAsiaPacific, egdi: 0.679, hdi: 0.703, iui: 79.0, pop_share: 1.5661, vpn: Nord, landing: 56, internal: 1642, hostnames: 54, capital: ("Hanoi", 21.03, 105.85), far_city: ("Ho Chi Minh City", 10.82, 106.63), idi: 3.54, efi: 63.38, gdp_k: 4.3, nri: 61.70 },
    CountryRow { code: "TH", name: "Thailand", region: EastAsiaPacific, egdi: 0.766, hdi: 0.800, iui: 88.0, pop_share: 1.1416, vpn: Nord, landing: 81, internal: 3267, hostnames: 82, capital: ("Bangkok", 13.76, 100.50), far_city: ("Chiang Mai", 18.79, 98.98), idi: 4.56, efi: 62.49, gdp_k: 7.1, nri: 64.46 },
    CountryRow { code: "KR", name: "South Korea", region: EastAsiaPacific, egdi: 0.953, hdi: 0.925, iui: 97.0, pop_share: 0.9184, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Seoul", 37.57, 126.98), far_city: ("Busan", 35.18, 129.08), idi: 10.00, efi: 81.01, gdp_k: 32.4, nri: 66.36 },
    CountryRow { code: "MY", name: "Malaysia", region: EastAsiaPacific, egdi: 0.774, hdi: 0.803, iui: 97.0, pop_share: 0.5715, vpn: Nord, landing: 261, internal: 20206, hostnames: 247, capital: ("Kuala Lumpur", 3.139, 101.69), far_city: ("Kota Kinabalu", 5.98, 116.07), idi: 5.70, efi: 72.78, gdp_k: 11.7, nri: 69.22 },
    CountryRow { code: "AU", name: "Australia", region: EastAsiaPacific, egdi: 0.941, hdi: 0.951, iui: 96.0, pop_share: 0.4314, vpn: Nord, landing: 708, internal: 6883, hostnames: 440, capital: ("Canberra", -35.28, 149.13), far_city: ("Perth", -31.95, 115.86), idi: 8.18, efi: 76.83, gdp_k: 64.5, nri: 63.29 },
    CountryRow { code: "TW", name: "Taiwan", region: EastAsiaPacific, egdi: 0.850, hdi: 0.920, iui: 92.0, pop_share: 0.4175, vpn: Nord, landing: 58, internal: 2996, hostnames: 54, capital: ("Taipei", 25.03, 121.57), far_city: ("Kaohsiung", 22.63, 120.30), idi: 6.23, efi: 84.92, gdp_k: 32.7, nri: 81.07 },
    CountryRow { code: "HK", name: "Hong Kong", region: EastAsiaPacific, egdi: 0.900, hdi: 0.952, iui: 96.0, pop_share: 0.1234, vpn: Nord, landing: 108, internal: 6857, hostnames: 92, capital: ("Hong Kong", 22.32, 114.17), far_city: ("Tuen Mun", 22.39, 113.97), idi: 8.65, efi: 79.15, gdp_k: 49.2, nri: 72.87 },
    CountryRow { code: "SG", name: "Singapore", region: EastAsiaPacific, egdi: 0.913, hdi: 0.939, iui: 96.0, pop_share: 0.1005, vpn: Nord, landing: 87, internal: 4368, hostnames: 90, capital: ("Singapore", 1.35, 103.82), far_city: ("Jurong", 1.33, 103.74), idi: 7.66, efi: 76.95, gdp_k: 82.8, nri: 90.25 },
    CountryRow { code: "NZ", name: "New Zealand", region: EastAsiaPacific, egdi: 0.943, hdi: 0.937, iui: 96.0, pop_share: 0.0841, vpn: Nord, landing: 251, internal: 7358, hostnames: 233, capital: ("Wellington", -41.29, 174.78), far_city: ("Auckland", -36.85, 174.76), idi: 7.22, efi: 88.04, gdp_k: 48.8, nri: 71.38 },
    // ---- South Asia ----
    CountryRow { code: "IN", name: "India", region: SouthAsia, egdi: 0.588, hdi: 0.633, iui: 46.0, pop_share: 15.376, vpn: Nord, landing: 207, internal: 13612, hostnames: 213, capital: ("New Delhi", 28.61, 77.21), far_city: ("Chennai", 13.08, 80.27), idi: 3.64, efi: 46.92, gdp_k: 2.4, nri: 49.63 },
    CountryRow { code: "BD", name: "Bangladesh", region: SouthAsia, egdi: 0.563, hdi: 0.661, iui: 39.0, pop_share: 2.3824, vpn: Surf, landing: 333, internal: 15757, hostnames: 329, capital: ("Dhaka", 23.81, 90.41), far_city: ("Chittagong", 22.36, 91.79), idi: 1.96, efi: 56.09, gdp_k: 2.7, nri: 48.72 },
    CountryRow { code: "PK", name: "Pakistan", region: SouthAsia, egdi: 0.424, hdi: 0.544, iui: 21.0, pop_share: 2.1393, vpn: Surf, landing: 118, internal: 3133, hostnames: 108, capital: ("Islamabad", 33.68, 73.05), far_city: ("Karachi", 24.86, 67.01), idi: 2.53, efi: 50.01, gdp_k: 1.6, nri: 42.69 },
    // ---- Middle East and North Africa ----
    CountryRow { code: "EG", name: "Egypt", region: MiddleEastNorthAfrica, egdi: 0.590, hdi: 0.731, iui: 72.0, pop_share: 1.0096, vpn: Surf, landing: 69, internal: 4683, hostnames: 66, capital: ("Cairo", 30.04, 31.24), far_city: ("Aswan", 24.09, 32.90), idi: 4.23, efi: 43.73, gdp_k: 4.3, nri: 41.35 },
    CountryRow { code: "DZ", name: "Algeria", region: MiddleEastNorthAfrica, egdi: 0.561, hdi: 0.745, iui: 71.0, pop_share: 0.698, vpn: Surf, landing: 202, internal: 2231, hostnames: 184, capital: ("Algiers", 36.74, 3.09), far_city: ("Tamanrasset", 22.79, 5.53), idi: 3.93, efi: 38.97, gdp_k: 4.3, nri: 46.12 },
    CountryRow { code: "MA", name: "Morocco", region: MiddleEastNorthAfrica, egdi: 0.592, hdi: 0.683, iui: 88.0, pop_share: 0.4719, vpn: Surf, landing: 144, internal: 8440, hostnames: 137, capital: ("Rabat", 34.02, -6.84), far_city: ("Agadir", 30.42, -9.60), idi: 4.24, efi: 62.31, gdp_k: 3.7, nri: 43.00 },
    CountryRow { code: "AE", name: "United Arab Emirates", region: MiddleEastNorthAfrica, egdi: 0.901, hdi: 0.911, iui: 100.0, pop_share: 0.2246, vpn: Nord, landing: 49, internal: 5277, hostnames: 50, capital: ("Abu Dhabi", 24.45, 54.38), far_city: ("Dubai", 25.20, 55.27), idi: 9.66, efi: 75.51, gdp_k: 49.0, nri: 74.79 },
    CountryRow { code: "IL", name: "Israel", region: MiddleEastNorthAfrica, egdi: 0.889, hdi: 0.919, iui: 90.0, pop_share: 0.1474, vpn: Nord, landing: 101, internal: 2994, hostnames: 98, capital: ("Jerusalem", 31.77, 35.22), far_city: ("Eilat", 29.56, 34.95), idi: 8.70, efi: 62.75, gdp_k: 54.7, nri: 75.15 },
    // ---- Sub-Saharan Africa ----
    CountryRow { code: "NG", name: "Nigeria", region: SubSaharanAfrica, egdi: 0.453, hdi: 0.535, iui: 55.0, pop_share: 2.846, vpn: Surf, landing: 189, internal: 11332, hostnames: 187, capital: ("Abuja", 9.06, 7.50), far_city: ("Lagos", 6.52, 3.38), idi: 2.83, efi: 48.37, gdp_k: 2.2, nri: 43.92 },
    CountryRow { code: "ZA", name: "South Africa", region: SubSaharanAfrica, egdi: 0.736, hdi: 0.713, iui: 72.0, pop_share: 0.6371, vpn: Nord, landing: 189, internal: 11332, hostnames: 187, capital: ("Pretoria", -25.75, 28.19), far_city: ("Cape Town", -33.92, 18.42), idi: 4.04, efi: 58.10, gdp_k: 6.8, nri: 53.16 },
];

/// Countries and territories that appear only as *hosting destinations* or
/// provider registration homes, never as studied governments. Together
/// with the 61 studied countries these cover the paper's "68 countries
/// with servers located" (Table 3). `landing/internal/hostnames` are zero;
/// indices are placeholders (never used for host-only rows).
pub const HOST_ONLY_COUNTRIES: &[CountryRow] = &[
    CountryRow { code: "NC", name: "New Caledonia", region: EastAsiaPacific, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Noumea", -22.27, 166.44), far_city: ("Kone", -21.06, 164.86), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
    CountryRow { code: "AT", name: "Austria", region: EuropeCentralAsia, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Vienna", 48.21, 16.37), far_city: ("Innsbruck", 47.27, 11.40), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
    CountryRow { code: "SK", name: "Slovakia", region: EuropeCentralAsia, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Bratislava", 48.15, 17.11), far_city: ("Kosice", 48.72, 21.26), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
    CountryRow { code: "IE", name: "Ireland", region: EuropeCentralAsia, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Dublin", 53.35, -6.26), far_city: ("Cork", 51.90, -8.47), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
    CountryRow { code: "FI", name: "Finland", region: EuropeCentralAsia, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Helsinki", 60.17, 24.94), far_city: ("Oulu", 65.01, 25.47), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
    CountryRow { code: "LU", name: "Luxembourg", region: EuropeCentralAsia, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Luxembourg", 49.61, 6.13), far_city: ("Esch", 49.50, 5.98), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
    CountryRow { code: "CO", name: "Colombia", region: LatinAmericaCaribbean, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Bogota", 4.71, -74.07), far_city: ("Barranquilla", 10.96, -74.80), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
    CountryRow { code: "NP", name: "Nepal", region: SouthAsia, egdi: 0.0, hdi: 0.0, iui: 0.0, pop_share: 0.0, vpn: Nord, landing: 0, internal: 0, hostnames: 0, capital: ("Kathmandu", 27.72, 85.32), far_city: ("Pokhara", 28.21, 83.99), idi: 0.0, efi: 0.0, gdp_k: 0.0, nri: 0.0 },
];

/// Find a studied country by code.
pub fn country(code: CountryCode) -> Option<&'static CountryRow> {
    COUNTRIES.iter().find(|c| c.cc() == code)
}

/// Find any country (studied or host-only) by code.
pub fn any_country(code: CountryCode) -> Option<&'static CountryRow> {
    country(code).or_else(|| HOST_ONLY_COUNTRIES.iter().find(|c| c.cc() == code))
}

/// EU member states within the sample (for the GDPR-compliance analysis,
/// §6.3). Non-sampled EU members are not listed because no URLs originate
/// there.
pub const EU_MEMBERS: &[&str] = &[
    "DE", "FR", "IT", "ES", "NL", "PL", "SE", "BE", "GR", "CZ", "RO", "HU", "PT", "BG", "LV",
    "EE", "DK", "AT", "SK", "IE", "FI", "LU",
];

/// Whether a country is an EU member (within the modelled set).
pub fn is_eu(code: CountryCode) -> bool {
    EU_MEMBERS.iter().any(|m| m.parse::<CountryCode>().expect("static code") == code)
}

/// The 14 countries of the governments-vs-topsites comparison (Table 6).
pub const TOPSITE_COUNTRIES: &[&str] =
    &["CA", "US", "MX", "BR", "FR", "BA", "AE", "IL", "ZA", "EG", "IN", "PK", "JP", "NZ"];

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_types::cc;

    #[test]
    fn sixty_one_countries_in_seven_regions() {
        assert_eq!(COUNTRIES.len(), 61);
        let count = |r: Region| COUNTRIES.iter().filter(|c| c.region == r).count();
        assert_eq!(count(Region::NorthAmerica), 2);
        assert_eq!(count(Region::LatinAmericaCaribbean), 8);
        assert_eq!(count(Region::EuropeCentralAsia), 29);
        assert_eq!(count(Region::MiddleEastNorthAfrica), 5);
        assert_eq!(count(Region::SubSaharanAfrica), 2);
        assert_eq!(count(Region::SouthAsia), 3);
        assert_eq!(count(Region::EastAsiaPacific), 12);
    }

    #[test]
    fn codes_are_unique_and_valid() {
        let mut seen = std::collections::HashSet::new();
        for c in COUNTRIES.iter().chain(HOST_ONLY_COUNTRIES) {
            assert!(seen.insert(c.cc()), "duplicate code {}", c.code);
        }
    }

    #[test]
    fn table_totals_match_paper() {
        // Note: the paper's Table 8 rows sum to 14,707 landing URLs while
        // Table 3 reports 15,878 — an internal inconsistency of the paper
        // (South Korea's row is all zeros). We embed Table 8 as printed
        // and treat its own sum as the oracle here; DESIGN.md records the
        // discrepancy.
        let landing: u32 = COUNTRIES.iter().map(|c| c.landing).sum();
        let internal: u32 = COUNTRIES.iter().map(|c| c.internal).sum();
        assert_eq!(landing, 14_707, "sum of Table 8 landing URLs");
        assert_eq!(internal, 962_970, "sum of Table 8 internal URLs");
        // Table 3 reports 15,878 / 1,017,865 — the ~5% gap to Table 8's
        // own rows is the paper's internal inconsistency, not ours.
        assert!((internal as f64 / 1_017_865.0) > 0.94);
    }

    #[test]
    fn population_coverage_is_about_82_percent() {
        let total: f64 = COUNTRIES.iter().map(|c| c.pop_share).sum();
        assert!((total - 82.7).abs() < 1.0, "population share sums to {total}");
    }

    #[test]
    fn vpn_provider_counts_match_table9() {
        use govhost_web::vantage::VpnProvider;
        let count = |v: VpnProvider| COUNTRIES.iter().filter(|c| c.vpn == v).count();
        assert_eq!(count(VpnProvider::Nord), 49);
        assert_eq!(count(VpnProvider::Surfshark), 10);
        assert_eq!(count(VpnProvider::HotspotShield), 2);
    }

    #[test]
    fn intercity_distances_plausible() {
        let us = country(cc!("US")).unwrap();
        assert!(us.intercity_km() > 3_000.0, "US spans a continent");
        let uy = country(cc!("UY")).unwrap();
        assert!(uy.intercity_km() < 600.0, "Uruguay is small");
        for c in COUNTRIES.iter().chain(HOST_ONLY_COUNTRIES) {
            let d = c.intercity_km();
            assert!(d > 5.0 && d < 8_000.0, "{}: {d} km", c.code);
        }
    }

    #[test]
    fn korea_has_no_data_as_in_table8() {
        let kr = country(cc!("KR")).unwrap();
        assert_eq!(kr.landing, 0);
        assert_eq!(kr.internal, 0);
    }

    #[test]
    fn eu_membership() {
        assert!(is_eu(cc!("DE")));
        assert!(is_eu(cc!("LU")));
        assert!(!is_eu(cc!("GB"))); // post-Brexit
        assert!(!is_eu(cc!("NO")));
        assert!(!is_eu(cc!("NC")), "New Caledonia is not part of the EU");
    }

    #[test]
    fn topsite_countries_match_table6() {
        // Table 6 lists two countries per region. (The paper's own table
        // files Egypt under Sub-Saharan Africa even though the sample
        // places it in MENA; we reproduce the table as printed.)
        assert_eq!(TOPSITE_COUNTRIES.len(), 14);
        for code in TOPSITE_COUNTRIES {
            let cc: CountryCode = code.parse().unwrap();
            assert!(country(cc).is_some(), "{code} must be in the sample");
        }
    }

    #[test]
    fn users_derived_from_pop_share() {
        let us = country(cc!("US")).unwrap();
        assert!((us.internet_users_m() - 5.760 * 53.0).abs() < 1e-9);
    }
}

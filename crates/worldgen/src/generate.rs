//! The world generator: profiles → concrete simulated Internet.
//!
//! Generation is strictly deterministic in [`GenParams::seed`]: the
//! country loop runs in the fixed order of [`COUNTRIES`], and all
//! randomness flows through one seeded RNG plus order-independent
//! `det`-hashes for per-entity noise.
//!
//! The output volumes track the paper's Table 8 (scaled by
//! [`GenParams::scale`]); the hosting behaviour tracks the per-country
//! [`HostingProfile`]s; and measurement imperfections (ICMP-dead servers,
//! geo-database errors, anycast detector misses, partial PTR/PeeringDB
//! coverage) are injected at the rates in [`GenParams`].

use crate::countries::{any_country, CountryRow, COUNTRIES, TOPSITE_COUNTRIES};
use crate::params::GenParams;
use crate::profiles::{HostingProfile, TldStyle};
use crate::providers::GLOBAL_PROVIDERS;
use crate::truth::{GroundTruth, HostTruth};
use crate::world::World;
use govhost_dns::{AuthoritativeServer, DnsName, RData, Resolver, Zone};
use govhost_geoloc::geodb::GeoEntry;
use govhost_geoloc::{CountryThresholds, GeoDb, Hoiho, IpMapCache, MAnycastSnapshot};
use govhost_netsim::asdb::{AsRecord, AsRegistry, Server};
use govhost_netsim::coords::City;
use govhost_netsim::det;
use govhost_netsim::latency::LatencyModel;
use govhost_netsim::peeringdb::{PeeringDb, PeeringDbRecord};
use govhost_netsim::probes::ProbeFleet;
use govhost_netsim::search::{SearchIndex, SearchResult};
use govhost_types::{Asn, CountryCode, Hostname, IpPrefix, OrgKind, ProviderCategory, Url};
use govhost_web::cert::TlsCert;
use govhost_web::corpus::WebCorpus;
use govhost_web::page::Page;
use govhost_web::resource::{ContentType, Resource};
use govhost_web::site::Website;
use govhost_det::DetRng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Ministry/agency name stems used to synthesize hostnames.
const AGENCY_WORDS: &[&str] = &[
    "ministry", "treasury", "health", "education", "interior", "defense", "justice",
    "agriculture", "energy", "transport", "labor", "customs", "tax", "parliament", "senate",
    "police", "statistics", "environment", "culture", "science", "tourism", "trade", "planning",
    "housing", "water", "mining", "fisheries", "railways", "posts", "aviation", "pensions",
    "migration", "archives", "meteorology", "geology", "elections", "procurement", "standards",
    "ports", "roads",
];

/// State-owned-enterprise name stems.
const SOE_WORDS: &[&str] = &[
    "telecom", "petrol", "electric", "rail", "airline", "bank", "post", "gas", "water", "mining",
];

/// Content-type mix used for generated resources: (type, weight, base
/// bytes).
const CONTENT_MIX: &[(ContentType, f64, u64)] = &[
    (ContentType::Html, 0.22, 28_000),
    (ContentType::Script, 0.24, 90_000),
    (ContentType::Style, 0.10, 25_000),
    (ContentType::Image, 0.32, 140_000),
    (ContentType::Font, 0.05, 60_000),
    (ContentType::Json, 0.05, 8_000),
    (ContentType::Other, 0.02, 200_000),
];

/// Share of government hostnames whose authoritative DNS is outsourced to
/// a global managed-DNS operator (NS records under the operator's zone
/// instead of self-hosted `ns1.<apex>`).
const MANAGED_DNS_FRACTION: f64 = 0.3;

/// The managed-DNS market, mirroring its real concentration: Cloudflare,
/// Amazon (Route 53-style) and Microsoft operate the outsourced NS sets.
const MANAGED_DNS_OPERATORS: [u32; 3] = [13335, 16509, 8075];

struct Generator {
    params: GenParams,
    rng: DetRng,
    registry: AsRegistry,
    peeringdb: PeeringDb,
    search: SearchIndex,
    zones: Vec<Zone>,
    corpus: WebCorpus,
    fleet: ProbeFleet,
    latency: LatencyModel,
    geodb_truth: Vec<(Ipv4Addr, CountryCode)>,
    ipmap: IpMapCache,
    hoiho: Hoiho,
    landing_pages: HashMap<CountryCode, Vec<Url>>,
    topsites: HashMap<CountryCode, Vec<Url>>,
    truth: GroundTruth,
    next_prefix: u32,
    next_asn: u32,
    /// Per-AS address space: /24 blocks are handed out per
    /// (location, anycast) pool so that each block's WHOIS registration
    /// can be set per deployment country (the APNIC local-entity
    /// behaviour).
    as_space: HashMap<Asn, AsSpace>,
    /// (asn, location, anycast) -> (ip, hostnames already assigned).
    server_pool: HashMap<(Asn, CountryCode, bool), Vec<(Ipv4Addr, u32)>>,
    /// provider asn -> zone apex name for CDN CNAME targets.
    provider_zone: HashMap<Asn, DnsName>,
    provider_zone_data: HashMap<Asn, Zone>,
    /// provider asn -> countries it serves (drives Fig. 10).
    provider_countries: HashMap<Asn, Vec<CountryCode>>,
    /// country -> (provider asn, weight) usable by that country.
    country_providers: HashMap<CountryCode, Vec<(Asn, f64)>>,
    /// national ASes per country: (govt, soe, local, regional).
    national_as: HashMap<CountryCode, NationalAses>,
    all_cities: Vec<City>,
}

#[derive(Debug, Clone)]
struct AsSpace {
    prefix: IpPrefix,
    next_block: u32,
    /// (location, anycast) -> (block index, addresses used in block).
    blocks: HashMap<(CountryCode, bool), (u32, u32)>,
}

#[derive(Debug, Clone, Default)]
struct NationalAses {
    govt: Vec<Asn>,
    soe: Vec<Asn>,
    local: Vec<Asn>,
    regional: Vec<Asn>,
}

impl World {
    /// Generate a world from parameters. Deterministic: the same
    /// parameters always produce the same world.
    pub fn generate(params: &GenParams) -> World {
        Generator::new(*params).run()
    }
}

impl Generator {
    fn new(params: GenParams) -> Self {
        Self {
            params,
            rng: DetRng::new(params.seed),
            registry: AsRegistry::new(),
            peeringdb: PeeringDb::new(),
            search: SearchIndex::new(),
            zones: Vec::new(),
            corpus: WebCorpus::new(),
            fleet: ProbeFleet::new(),
            latency: LatencyModel { seed: params.seed, ..LatencyModel::default() },
            geodb_truth: Vec::new(),
            ipmap: IpMapCache::new(),
            hoiho: Hoiho::new(),
            landing_pages: HashMap::new(),
            topsites: HashMap::new(),
            truth: GroundTruth::default(),
            next_prefix: 0,
            next_asn: 200_000,
            as_space: HashMap::new(),
            server_pool: HashMap::new(),
            provider_zone: HashMap::new(),
            provider_zone_data: HashMap::new(),
            provider_countries: HashMap::new(),
            country_providers: HashMap::new(),
            national_as: HashMap::new(),
            all_cities: Vec::new(),
        }
    }

    fn run(mut self) -> World {
        self.deploy_probes();
        self.create_global_providers();
        self.assign_providers_to_countries();
        self.create_shared_third_party_sites();
        for row in COUNTRIES {
            self.build_country(row);
        }
        self.build_topsites();
        self.finish()
    }

    // ---- substrate helpers -------------------------------------------------

    fn alloc_prefix(&mut self) -> IpPrefix {
        // Sequential /16s starting at 11.0.0.0.
        let base = 0x0B00_0000u32 + (self.next_prefix << 16);
        self.next_prefix += 1;
        IpPrefix::new(Ipv4Addr::from(base), 16).expect("generated prefix is valid")
    }

    fn fresh_asn(&mut self) -> Asn {
        let asn = Asn(self.next_asn);
        self.next_asn += 1;
        asn
    }

    fn cities_of(&self, country: CountryCode) -> (City, City) {
        let row = any_country(country).unwrap_or_else(|| panic!("unknown country {country}"));
        (row.capital_city(), row.far_city_city())
    }

    #[allow(clippy::too_many_arguments)] // mirrors the AsRecord fields
    fn create_as(
        &mut self,
        asn: Asn,
        name: &str,
        org: &str,
        kind: OrgKind,
        registered_in: CountryCode,
        website: Option<String>,
        abuse_email: String,
        footprint: Vec<CountryCode>,
    ) {
        let prefix = self.alloc_prefix();
        self.registry.allocate(prefix, asn);
        self.as_space
            .insert(asn, AsSpace { prefix, next_block: 0, blocks: HashMap::new() });
        self.registry.insert_as(AsRecord {
            asn,
            name: name.to_string(),
            org: org.to_string(),
            kind,
            registered_in,
            website,
            abuse_email,
            footprint,
        });
    }

    /// Get (or create) a server of `asn` located in `location`, reusing
    /// pool servers until each carries ~3 hostnames.
    fn server_for(&mut self, asn: Asn, location: CountryCode, anycast: bool) -> Ipv4Addr {
        // CDN anycast addresses front far more hostnames per IP than
        // unicast servers do (Table 3: 433 anycast of 4,286 addresses for
        // 13,483 hostnames).
        let hosts_per_server: u32 = if anycast { 5 } else { 3 };
        let key = (asn, location, anycast);
        if let Some(pool) = self.server_pool.get_mut(&key) {
            if let Some(last) = pool.last_mut() {
                if last.1 < hosts_per_server {
                    last.1 += 1;
                    return last.0;
                }
            }
        }
        // Create a new server, carving addresses from a per-(location,
        // anycast) /24 block of the AS's space.
        let record_kind = self.registry.as_record(asn).expect("AS exists").kind;
        let record_home = self.registry.as_record(asn).expect("AS exists").registered_in;
        let (ip, host_index, new_block) = {
            let space = self.as_space.get_mut(&asn).expect("AS has allocated space");
            let entry = space.blocks.entry((location, anycast));
            let (block, used) = match entry {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let v = o.get_mut();
                    if v.1 >= 255 {
                        // Block exhausted: start a new one for this pool.
                        *v = (space.next_block, 0);
                        space.next_block += 1;
                    }
                    v.1 += 1;
                    (v.0, v.1)
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    let block = space.next_block;
                    space.next_block += 1;
                    v.insert((block, 1));
                    (block, 1)
                }
            };
            let index = block * 256 + used;
            let ip = space.prefix.nth(index).expect("prefix space not exhausted");
            (ip, index, used == 1)
        };
        // APNIC-style local registration: a global provider's unicast
        // deployments in East Asia & Pacific or South Asia carry the
        // deployment country in their inetnum, not the provider's home.
        if new_block
            && !anycast
            && record_kind == OrgKind::GlobalProvider
            && location != record_home
        {
            let region = any_country(location).map(|r| r.region);
            if matches!(region, Some(govhost_types::Region::EastAsiaPacific) | Some(govhost_types::Region::SouthAsia))
            {
                let base = u32::from(ip) & 0xFFFF_FF00;
                let block_prefix = IpPrefix::new(Ipv4Addr::from(base), 24)
                    .expect("block prefix is valid");
                self.registry.set_prefix_country(block_prefix, location);
            }
        }
        let (capital, far) = self.cities_of(location);
        let primary = if det::unit(self.params.seed, &[u64::from(u32::from(ip)), 1]) < 0.7 {
            capital
        } else {
            far
        };
        let mut sites = vec![primary.clone()];
        if anycast {
            // A global anycast deployment: domestic site plus fixed PoPs —
            // except that CDNs do not build PoPs everywhere. About 15% of
            // deployments lack the domestic site and serve the country
            // from abroad; those are exactly the anycast addresses §3.5
            // cannot confirm in-country and excludes (17% in Table 4).
            let no_domestic_pop =
                det::unit(self.params.seed, &[u64::from(u32::from(ip)), 7]) < 0.15;
            if no_domestic_pop {
                sites.clear();
            }
            for cc in ["US", "DE", "SG"] {
                let c: CountryCode = cc.parse().expect("static code");
                if c != location {
                    sites.push(self.cities_of(c).0);
                }
            }
            if sites.is_empty() {
                sites.push(self.cities_of("US".parse().expect("static")).0);
            }
        }
        let record = self.registry.as_record(asn).expect("AS exists").clone();
        let responsive_rate = match record.kind {
            OrgKind::GlobalProvider if anycast => 0.92,
            OrgKind::GlobalProvider => 0.55,
            _ => {
                // National infrastructure: the country's profile decides.
                crate::countries::country(location)
                    .map(|row| HostingProfile::for_country(row).icmp_responsive_rate)
                    .unwrap_or(0.5)
            }
        };
        let ip_key = u64::from(u32::from(ip));
        let icmp_responsive = det::unit(self.params.seed, &[ip_key, 2]) < responsive_rate;
        let ptr = if det::unit(self.params.seed, &[ip_key, 3]) < self.params.ptr_coverage {
            let org_slug: String = record
                .name
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            Some(format!(
                "srv{}.{}.{}.net",
                host_index,
                primary.slug(),
                if org_slug.is_empty() { "host".to_string() } else { org_slug }
            ))
        } else {
            None
        };
        self.all_cities.push(primary);
        self.registry.add_server(Server {
            ip,
            asn,
            sites,
            anycast,
            icmp_responsive,
            ptr,
        });
        // IPInfo truth: unicast rows get the true country; anycast rows
        // mimic the classic failure of geolocating anycast to the
        // operator's registration country.
        let claimed = if anycast { record.registered_in } else { location };
        self.geodb_truth.push((ip, claimed));
        if !anycast && det::unit(self.params.seed, &[ip_key, 4]) < self.params.ipmap_coverage {
            self.ipmap.insert(ip, location);
        }
        self.server_pool.entry(key).or_default().push((ip, 1));
        ip
    }

    // ---- probes ------------------------------------------------------------

    fn deploy_probes(&mut self) {
        for row in COUNTRIES.iter().chain(crate::countries::HOST_ONLY_COUNTRIES) {
            let capital = row.capital_city();
            let far = row.far_city_city();
            self.fleet.deploy(&capital);
            self.fleet.deploy(&far);
            // Three interpolated inland probes for the studied countries.
            if row.landing > 0 || row.internal > 0 || crate::countries::country(row.cc()).is_some()
            {
                for t in [0.25, 0.5, 0.75] {
                    let lat = capital.location.lat * (1.0 - t) + far.location.lat * t;
                    let lon = capital.location.lon * (1.0 - t) + far.location.lon * t;
                    let city = City::new(format!("{}{}", row.capital.0, (t * 4.0) as u32), row.cc(), lat, lon);
                    self.fleet.deploy(&city);
                }
            }
            self.all_cities.push(capital);
            self.all_cities.push(far);
        }
    }

    // ---- global providers --------------------------------------------------

    fn create_global_providers(&mut self) {
        for p in GLOBAL_PROVIDERS {
            let slug = p.slug();
            let footprint: Vec<CountryCode> =
                ["US", "DE", "SG", "BR", "JP", "AU"].iter().map(|c| c.parse().unwrap()).collect();
            self.create_as(
                p.asn(),
                &format!("{}-NET", slug.to_uppercase()),
                p.org,
                OrgKind::GlobalProvider,
                p.cc(),
                Some(format!("https://www.{slug}.com")),
                format!("abuse@{slug}.com"),
                footprint,
            );
            self.peeringdb.insert(PeeringDbRecord {
                asn: p.asn(),
                name: p.name.to_string(),
                org: p.org.to_string(),
                website: Some(format!("https://www.{slug}.com")),
                notes: "Content delivery and cloud services".to_string(),
            });
            self.search.insert(
                p.org,
                SearchResult {
                    domain: format!("{slug}.com"),
                    snippet: format!("{} provides cloud and content delivery services.", p.name),
                },
            );
            let apex: DnsName = format!("{slug}.net").parse().expect("provider apex");
            self.provider_zone.insert(p.asn(), apex.clone());
            self.provider_zone_data.insert(p.asn(), Zone::new(apex));
        }
    }

    /// Assign providers to countries so each provider's footprint matches
    /// Fig. 10 exactly, with the paper's pinned provider–country pairs
    /// honoured (Hetzner→Norway, Amazon→Singapore, Cloudflare→Moldova…).
    fn assign_providers_to_countries(&mut self) {
        let all: Vec<CountryCode> = COUNTRIES.iter().map(CountryRow::cc).collect();
        let pinned: &[(&str, u32)] = &[
            ("NO", 24940),  // Hetzner serves 57% of a Scandinavian country's bytes
            ("SG", 16509),  // Amazon 97% of an East Asian country's bytes
            ("MD", 13335),  // Cloudflare 72% in Eastern Europe
            ("AR", 13335),  // Cloudflare 58% in South America
            ("HK", 13335),  // Cloudflare 56% in a small Asian country
        ];
        for p in GLOBAL_PROVIDERS {
            let mut scored: Vec<(f64, CountryCode)> = all
                .iter()
                .map(|c| {
                    let mut score =
                        det::unit(0x9097, &[u64::from(p.asn), det::hash_str(c.as_str())]);
                    if pinned.iter().any(|(pc, pa)| *pa == p.asn && c.as_str() == *pc) {
                        score += 10.0;
                    }
                    (score, *c)
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            let chosen: Vec<CountryCode> =
                scored.into_iter().take(p.target_countries).map(|(_, c)| c).collect();
            self.truth.provider_assignments.insert(p.asn(), chosen.clone());
            self.provider_countries.insert(p.asn(), chosen);
        }
        // Coverage guarantee: every country must be reachable by at least
        // one global provider. Countries Cloudflare's cut missed get
        // swapped in for its lowest-scoring non-pinned members.
        let covered: std::collections::HashSet<CountryCode> =
            self.provider_countries.values().flatten().copied().collect();
        let missing: Vec<CountryCode> =
            all.iter().copied().filter(|c| !covered.contains(c)).collect();
        if !missing.is_empty() {
            let cf = self.provider_countries.get_mut(&Asn(13335)).expect("Cloudflare exists");
            for m in missing {
                // Drop the last (lowest-score) member to keep the count.
                cf.pop();
                cf.push(m);
            }
            self.truth.provider_assignments.insert(Asn(13335), cf.clone());
        }
        // Invert into per-country weighted provider lists.
        for p in GLOBAL_PROVIDERS {
            let countries = self.provider_countries[&p.asn()].clone();
            for (rank, c) in countries.iter().enumerate() {
                // Weight by global footprint so the Fig. 10 histogram
                // emerges even when a country has few global hostnames.
                let mut weight =
                    p.target_countries as f64 / 10.0 / (1.0 + rank as f64 * 0.05);
                if pinned.iter().any(|(pc, pa)| *pa == p.asn && c.as_str() == *pc) {
                    weight = 25.0; // the pinned provider dominates that country
                }
                self.country_providers.entry(*c).or_default().push((p.asn(), weight));
            }
        }
        // A third of countries concentrate on their leading provider —
        // §7.2: 32% of 3P-Global-led countries serve over half their bytes
        // from a single network.
        for (c, providers) in self.country_providers.iter_mut() {
            let key = det::hash_str(c.as_str());
            if det::unit(0xC0CE, &[key]) < 0.5 {
                if let Some(top) = providers
                    .iter_mut()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
                {
                    top.1 *= 60.0;
                }
            }
        }
    }

    /// Shared non-government third-party sites: trackers and analytics
    /// hosts that government pages embed and the classifier must filter
    /// out (§3.3).
    fn create_shared_third_party_sites(&mut self) {
        for i in 0..12u32 {
            let host: Hostname =
                format!("cdn{i}.webtrack{}.com", i % 4).parse().expect("valid host");
            let asn = GLOBAL_PROVIDERS[(i as usize) % 4].asn();
            let us: CountryCode = "US".parse().unwrap();
            let ip = self.server_for(asn, us, false);
            let mut zone = Zone::new(DnsName::from(&host));
            zone.add(DnsName::from(&host), RData::A(ip));
            self.zones.push(zone);
            let landing = Url::https(host.clone(), "/");
            let mut site = Website::new(landing);
            site.cert = Some(TlsCert::for_host(host, "TrackerTrust CA"));
            self.corpus.insert(site);
        }
    }

    // ---- per-country build --------------------------------------------------

    fn build_country(&mut self, row: &CountryRow) {
        let code = row.cc();
        let profile =
            HostingProfile::for_country(row).drifted(self.params.third_party_drift);
        self.create_national_ases(row, &profile);

        let n_hosts = self.params.scaled(row.hostnames, 3) as usize;
        let n_urls = self.params.scaled(row.internal, 40) as u64;
        let n_landing = self.params.scaled(row.landing, 2) as usize;
        self.truth.planned_urls.insert(code, n_urls);
        self.truth.planned_landing.insert(code, n_landing as u32);
        if n_hosts == 0 || n_urls == 0 {
            self.landing_pages.insert(code, Vec::new());
            return;
        }

        let hosts = self.plan_hostnames(row, &profile, n_hosts);
        let weights: Vec<f64> = hosts.iter().map(|h| h.weight).collect();

        // Materialize infrastructure per hostname.
        let mut host_ips = Vec::with_capacity(hosts.len());
        for plan in &hosts {
            let ip = self.wire_hostname(plan);
            host_ips.push(ip);
        }

        // Websites: one per hostname, then the URL budget distributed.
        self.build_sites(row, &profile, &hosts, n_urls, &weights, n_landing);

        // Record truth.
        for plan in &hosts {
            self.truth.hosts.insert(
                plan.host.clone(),
                HostTruth {
                    country: code,
                    category: plan.category,
                    asn: plan.asn,
                    location: plan.location,
                    anycast: plan.anycast,
                    gov_tld: plan.gov_tld,
                    san_only: plan.san_only,
                },
            );
        }
    }

    fn create_national_ases(&mut self, row: &CountryRow, profile: &HostingProfile) {
        let code = row.cc();
        let cc_lower = code.as_str().to_lowercase();
        let mut nat = NationalAses::default();

        // Government networks (used exclusively by institutions).
        let gov_names =
            ["National Data Center", "Ministry of Interior Network", "Armed Forces Network"];
        for (i, base) in gov_names.iter().enumerate() {
            let asn = self.fresh_asn();
            let org = format!("{base} of {}", row.name);
            let gov_domain = match profile.tld_style.token() {
                Some(tok) if code.as_str() == "US" => format!("nic{i}.{tok}"),
                Some(tok) => format!("nic{i}.{tok}.{cc_lower}"),
                None => format!("govnet{i}.{cc_lower}"),
            };
            self.create_as(
                asn,
                &format!("GOVNET-{}-{i}", code),
                &org,
                OrgKind::Government,
                code,
                None,
                format!("noc@{gov_domain}"),
                vec![code],
            );
            let asn_key = u64::from(asn.value());
            if det::unit(self.params.seed, &[asn_key, 10]) < self.params.peeringdb_gov_coverage {
                self.peeringdb.insert(PeeringDbRecord {
                    asn,
                    name: format!("GOVNET-{code}"),
                    org: org.clone(),
                    website: Some(format!("https://www.{gov_domain}")),
                    notes: "Government network".to_string(),
                });
            }
            if det::unit(self.params.seed, &[asn_key, 11]) < self.params.search_coverage {
                self.search.insert(
                    &org,
                    SearchResult {
                        domain: gov_domain,
                        snippet: format!("{org} is a government agency of {}.", row.name),
                    },
                );
            }
            nat.govt.push(asn);
        }

        // State-owned enterprises: plain commercial names, the search
        // index is often the only evidence (the YPF case of §3.4).
        let n_soe = 2 + (det::mix(0x50E, &[det::hash_str(row.code)]) % 2) as usize;
        for i in 0..n_soe {
            let word = SOE_WORDS[(i * 3 + row.code.len()) % SOE_WORDS.len()];
            let asn = self.fresh_asn();
            let org = format!("{} {word} S.A.", row.name);
            let domain = format!("{word}-{cc_lower}.com");
            self.create_as(
                asn,
                &format!("{}-{}", word.to_uppercase(), code),
                &org,
                OrgKind::StateOwnedEnterprise,
                code,
                Some(format!("https://www.{domain}")),
                format!("abuse@{domain}"),
                vec![code],
            );
            let asn_key = u64::from(asn.value());
            if det::unit(self.params.seed, &[asn_key, 12]) < 0.3 {
                self.peeringdb.insert(PeeringDbRecord {
                    asn,
                    name: format!("{word}-{code}"),
                    org: org.clone(),
                    website: Some(format!("https://www.{domain}")),
                    notes: String::new(),
                });
            }
            if det::unit(self.params.seed, &[asn_key, 13]) < self.params.search_coverage {
                self.search.insert(
                    &org,
                    SearchResult {
                        domain,
                        snippet: format!(
                            "{org} is the state-owned {word} company of {}.",
                            row.name
                        ),
                    },
                );
            }
            nat.soe.push(asn);
        }

        // Local commercial providers.
        for i in 0..6 {
            let asn = self.fresh_asn();
            let org = format!("{} Hosting {i} Ltd.", row.name);
            let domain = format!("hosting{i}-{cc_lower}.com");
            self.create_as(
                asn,
                &format!("HOST{i}-{code}"),
                &org,
                OrgKind::LocalProvider,
                code,
                Some(format!("https://www.{domain}")),
                format!("abuse@{domain}"),
                vec![code],
            );
            self.search.insert(
                &org,
                SearchResult {
                    domain,
                    snippet: format!("{org} offers web hosting and colocation."),
                },
            );
            nat.local.push(asn);
        }

        // One regional provider, registered in a same-region neighbour.
        let neighbour = COUNTRIES
            .iter()
            .filter(|c| c.region == row.region && c.cc() != code)
            .min_by_key(|c| det::mix(0x4E16, &[det::hash_str(c.code), det::hash_str(row.code)]))
            .map(CountryRow::cc)
            .unwrap_or(code);
        let asn = self.fresh_asn();
        let org = format!("Regional Cloud {} GmbH", neighbour);
        self.create_as(
            asn,
            &format!("REGIO-{neighbour}"),
            &org,
            OrgKind::RegionalProvider,
            neighbour,
            Some(format!("https://www.regio-{}.com", neighbour.as_str().to_lowercase())),
            format!("abuse@regio-{}.com", neighbour.as_str().to_lowercase()),
            COUNTRIES.iter().filter(|c| c.region == row.region).map(CountryRow::cc).collect(),
        );
        nat.regional.push(asn);

        self.national_as.insert(code, nat);
    }

    fn plan_hostnames(
        &mut self,
        row: &CountryRow,
        profile: &HostingProfile,
        n_hosts: usize,
    ) -> Vec<HostPlan> {
        let code = row.cc();
        let cc_lower = code.as_str().to_lowercase();
        let mut plans: Vec<HostPlan> = Vec::with_capacity(n_hosts + 2);

        // France's New Caledonia dependency is a pinned special case:
        // gouv.nc carries 18% of French URLs from OPT's network (§6.3).
        let mut special_weight = 0.0;
        if code.as_str() == "FR" {
            let opt_asn = self.ensure_opt_nc();
            plans.push(HostPlan {
                host: "gouv.nc".parse().expect("valid host"),
                category: ProviderCategory::GovtSoe,
                asn: opt_asn,
                location: "NC".parse().unwrap(),
                anycast: false,
                weight: 0.1803,
                gov_tld: true,
                san_only: false,
            });
            special_weight = 0.1803;
        }

        // Category counts by largest remainder over the remaining weight.
        let remaining = 1.0 - special_weight;
        let budget = n_hosts.saturating_sub(plans.len()).max(1);
        let counts = largest_remainder(&profile.url_shares, budget);

        // Foreign-location budget: hostnames are sorted so that Regional
        // and Global categories absorb the foreign share first.
        let mut foreign_weight_needed =
            (1.0 - profile.domestic_server_share - if code.as_str() == "FR" { 0.1803 } else { 0.0 })
                .max(0.0);

        let mut word_idx = 0usize;
        let nat = self.national_as.get(&code).expect("national ASes built").clone();
        let order = [
            ProviderCategory::ThirdPartyRegional,
            ProviderCategory::ThirdPartyGlobal,
            ProviderCategory::ThirdPartyLocal,
            ProviderCategory::GovtSoe,
        ];
        for category in order {
            let n_c = counts[category.index()];
            if n_c == 0 {
                continue;
            }
            let w_each = remaining * profile.url_shares[category.index()] / n_c as f64;
            // For the Global category, the foreign quota is taken from the
            // *tail* of the list so the first global hostname can pin the
            // country's leading provider (the Fig. 10 usage signal), and
            // anycast CDN fronts stay domestic.
            let foreign_global = if category == ProviderCategory::ThirdPartyGlobal && w_each > 0.0
            {
                ((foreign_weight_needed / w_each).ceil() as usize).min(n_c)
            } else {
                0
            };
            for idx in 0..n_c {
                let word = AGENCY_WORDS[word_idx % AGENCY_WORDS.len()];
                let serial = word_idx / AGENCY_WORDS.len();
                word_idx += 1;
                let gov_tld = self.rng.f64() < profile.gov_tld_host_fraction
                    && category == ProviderCategory::GovtSoe
                    || (self.rng.f64() < profile.gov_tld_host_fraction * 0.8
                        && category != ProviderCategory::GovtSoe);
                let host_str = if gov_tld {
                    match profile.tld_style {
                        TldStyle::DotGov => format!("{word}{serial}.gov"),
                        style => format!(
                            "{word}{serial}.{}.{cc_lower}",
                            style.token().expect("non-plain style has token")
                        ),
                    }
                } else {
                    format!("{word}{serial}-{cc_lower}gov.{cc_lower}")
                };
                let host: Hostname = host_str.parse().expect("generated hostname is valid");

                // Pick operator + location.
                let wants_foreign = foreign_weight_needed > 0.0
                    && match category {
                        ProviderCategory::ThirdPartyRegional => true,
                        ProviderCategory::ThirdPartyGlobal => idx >= n_c - foreign_global,
                        _ => false,
                    };
                let force_top_provider =
                    category == ProviderCategory::ThirdPartyGlobal && idx == 0 && !wants_foreign;
                let (asn, location, anycast) =
                    self.pick_operator(code, profile, category, wants_foreign, force_top_provider, &nat);
                let is_foreign = location != code;
                if is_foreign {
                    foreign_weight_needed -= w_each;
                }
                plans.push(HostPlan {
                    host,
                    category,
                    asn,
                    location,
                    anycast,
                    weight: w_each,
                    gov_tld,
                    san_only: false,
                });
            }
        }

        // One SAN-only affiliate for countries with enough volume: a
        // hostname nothing but a landing-page SAN identifies (§3.3's
        // orniss.ro / energia-argentina.com.ar examples).
        if n_hosts >= 6 {
            let host: Hostname = format!("energia-{cc_lower}.com").parse().expect("valid host");
            let asn = nat.soe.first().copied().unwrap_or(nat.govt[0]);
            let org = self.registry.as_record(asn).expect("AS exists").org.clone();
            self.search.insert(
                &format!("energia-{cc_lower}"),
                SearchResult {
                    domain: format!("energia-{cc_lower}.com"),
                    snippet: format!("Official portal of {org}, a state-owned enterprise."),
                },
            );
            plans.push(HostPlan {
                host,
                category: ProviderCategory::GovtSoe,
                asn,
                location: code,
                anycast: false,
                weight: 0.003,
                gov_tld: false,
                san_only: true,
            });
        }

        // Renormalize weights.
        let total: f64 = plans.iter().map(|p| p.weight).sum();
        for p in &mut plans {
            p.weight /= total;
        }
        plans
    }

    fn ensure_opt_nc(&mut self) -> Asn {
        let asn = Asn(18200);
        if self.registry.as_record(asn).is_none() {
            let nc: CountryCode = "NC".parse().unwrap();
            self.create_as(
                asn,
                "OPT-NC",
                "Office des Postes et des Telecomm de Nouvelle Caledonie",
                OrgKind::StateOwnedEnterprise,
                nc,
                Some("https://www.opt.nc".to_string()),
                "abuse@opt.nc".to_string(),
                vec![nc],
            );
            self.search.insert(
                "Office des Postes et des Telecomm de Nouvelle Caledonie",
                SearchResult {
                    domain: "opt.nc".to_string(),
                    snippet: "OPT is New Caledonia's state-owned posts and telecom operator."
                        .to_string(),
                },
            );
        }
        asn
    }

    #[allow(clippy::too_many_arguments)]
    fn pick_operator(
        &mut self,
        code: CountryCode,
        profile: &HostingProfile,
        category: ProviderCategory,
        wants_foreign: bool,
        force_top_provider: bool,
        nat: &NationalAses,
    ) -> (Asn, CountryCode, bool) {
        let location = if wants_foreign {
            self.pick_foreign_dest(profile).unwrap_or(code)
        } else {
            code
        };
        match category {
            ProviderCategory::GovtSoe => {
                // Most state hosting concentrates on the primary national
                // data center: §7.2 finds 63% of Govt&SOE-led countries
                // serve over half their bytes from a single network.
                let pool: Vec<(Asn, f64)> = nat
                    .govt
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (*a, if i == 0 { 13.0 } else { 1.0 }))
                    .chain(nat.soe.iter().map(|a| (*a, 1.2)))
                    .collect();
                (weighted_pick(&mut self.rng, &pool), code, false)
            }
            ProviderCategory::ThirdPartyLocal => {
                // The biggest local host leads, but less starkly.
                let pool: Vec<(Asn, f64)> = nat
                    .local
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (*a, if i == 0 { 3.0 } else { 1.0 }))
                    .collect();
                (weighted_pick(&mut self.rng, &pool), code, false)
            }
            ProviderCategory::ThirdPartyRegional => {
                let asn = nat.regional[0];
                (asn, location, false)
            }
            ProviderCategory::ThirdPartyGlobal => {
                let providers = self
                    .country_providers
                    .get(&code)
                    .cloned()
                    .unwrap_or_else(|| vec![(Asn(13335), 1.0)]);
                let chosen = if force_top_provider {
                    providers
                        .iter()
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
                        .expect("nonempty provider list")
                        .0
                } else {
                    weighted_pick(&mut self.rng, &providers)
                };
                let provider =
                    crate::providers::provider_by_asn(chosen.value()).expect("known provider");
                // Foreign-assigned hostnames prefer unicast providers so
                // their location is measurable; anycast stays domestic.
                if wants_foreign && provider.anycast {
                    let unicast: Vec<(Asn, f64)> = providers
                        .iter()
                        .filter(|(a, _)| {
                            crate::providers::provider_by_asn(a.value())
                                .map(|p| !p.anycast)
                                .unwrap_or(false)
                        })
                        .copied()
                        .collect();
                    if !unicast.is_empty() {
                        return (weighted_pick(&mut self.rng, &unicast), location, false);
                    }
                }
                (chosen, location, provider.anycast && !wants_foreign)
            }
        }
    }

    fn pick_foreign_dest(&mut self, profile: &HostingProfile) -> Option<CountryCode> {
        if profile.foreign_dests.is_empty() {
            return None;
        }
        let total: f64 = profile.foreign_dests.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.f64() * total;
        for (c, w) in &profile.foreign_dests {
            pick -= w;
            if pick <= 0.0 {
                return Some(*c);
            }
        }
        profile.foreign_dests.last().map(|(c, _)| *c)
    }

    /// Create the server + DNS machinery for one planned hostname.
    fn wire_hostname(&mut self, plan: &HostPlan) -> Ipv4Addr {
        let apex = DnsName::from(&plan.host);
        let mut zone = Zone::new(apex.clone());
        // Apex housekeeping records, as real zones carry. A deterministic
        // fraction of governments outsource their authoritative DNS to a
        // global managed-DNS operator (the shared-NS dependence of the
        // authoritative-DNS-resilience literature): their NS set points
        // into the operator's zone instead of at themselves, so an
        // operator outage cascades to domains it does not even host.
        // The gate and operator choice are keyed hashes of the world
        // seed and hostname — never `self.rng` — so they perturb no
        // other generated surface, and NS records are invisible to
        // A-record resolution, so measured bytes are unchanged.
        if let (Ok(mname), Ok(rname)) = (apex.child("ns1"), apex.child("hostmaster")) {
            zone.add(
                apex.clone(),
                RData::Soa { mname: mname.clone(), rname, serial: 2_024_110_401 },
            );
            let seed = self.params.seed;
            let host_key = det::hash_str(plan.host.as_str());
            let managed = det::unit(seed, &[det::hash_str("managed-dns"), host_key])
                < MANAGED_DNS_FRACTION;
            let operator = managed.then(|| {
                let pick = det::mix(seed, &[det::hash_str("managed-dns-op"), host_key]);
                let asn = MANAGED_DNS_OPERATORS[pick as usize % MANAGED_DNS_OPERATORS.len()];
                crate::providers::provider_by_asn(asn).expect("static operator ASNs")
            });
            match operator {
                Some(op) => {
                    let dns_apex = op.zone_apex();
                    for ns in ["ns1.dns", "ns2.dns"] {
                        if let Ok(target) = dns_apex.child(ns) {
                            zone.add(apex.clone(), RData::Ns(target));
                        }
                    }
                }
                None => zone.add(apex.clone(), RData::Ns(mname)),
            }
        }
        let provider =
            crate::providers::provider_by_asn(plan.asn.value()).filter(|p| p.anycast);
        let ip = match provider {
            Some(_) if plan.anycast => {
                // CDN front: CNAME into the provider zone, answered by an
                // anycast address with a domestic site.
                let ip = self.server_for(plan.asn, plan.location, true);
                let slug: String =
                    plan.host.as_str().chars().map(|c| if c == '.' { '-' } else { c }).collect();
                let provider_apex = self.provider_zone[&plan.asn].clone();
                let edge = provider_apex
                    .child(&format!("{slug}.edge"))
                    .unwrap_or_else(|_| provider_apex.clone());
                zone.add(apex.clone(), RData::Cname(edge.clone()));
                let pz = self.provider_zone_data.get_mut(&plan.asn).expect("provider zone");
                pz.add(edge, RData::A(ip));
                ip
            }
            _ => {
                let ip = self.server_for(plan.asn, plan.location, false);
                zone.add(apex.clone(), RData::A(ip));
                ip
            }
        };
        self.zones.push(zone);
        ip
    }

    fn build_sites(
        &mut self,
        row: &CountryRow,
        profile: &HostingProfile,
        hosts: &[HostPlan],
        n_urls: u64,
        weights: &[f64],
        n_landing: usize,
    ) {
        let code = row.cc();
        // Sites: one per hostname, with a small page skeleton to depth 7.
        let mut sites: Vec<Website> = Vec::with_capacity(hosts.len());
        for (i, plan) in hosts.iter().enumerate() {
            let landing = Url::https(plan.host.clone(), "/");
            let mut site = Website::new(landing.clone());
            let mut cert = TlsCert::for_host(plan.host.clone(), "GovSign CA");
            // The first site's certificate carries the SAN-only affiliates.
            if i == 0 {
                for other in hosts.iter().filter(|p| p.san_only) {
                    cert.sans.push(other.host.clone());
                }
            }
            site.cert = Some(cert);
            // Countries with a meaningful restriction rate always get at
            // least one geo-blocked site, so the behaviour is exercised
            // even at tiny scales.
            let force_restricted = i == 1 && profile.geo_restricted_fraction >= 0.05;
            if force_restricted || self.rng.f64() < profile.geo_restricted_fraction {
                site.geo_restricted_to = Some(code);
            }
            // Page skeleton: a chain of pages to depth 7 so deep crawls
            // find something at every level.
            let mut parent_path = "/".to_string();
            for depth in 1..=7u32 {
                let path = format!("/d{depth}");
                let page = Page::empty(Url::https(plan.host.clone(), path.clone()), 9_000);
                site.insert_page(page);
                let parent_url = Url::https(plan.host.clone(), parent_path.clone());
                let link = Url::https(plan.host.clone(), path.clone());
                site.page_mut(parent_url.path()).expect("parent exists").links.push(link);
                parent_path = path;
            }
            // A couple of external links: one to another government site,
            // one to a contractor (non-government) the classifier must
            // drop.
            if hosts.len() > 1 {
                let other = &hosts[(i + 1) % hosts.len()];
                let target = Url::https(other.host.clone(), "/");
                site.page_mut("/").expect("landing").links.push(target);
            }
            let tracker: Url = format!("https://cdn{}.webtrack{}.com/", i % 12, i % 4)
                .parse()
                .expect("valid URL");
            site.page_mut("/").expect("landing").links.push(tracker);
            sites.push(site);
        }

        // Landing-URL list (§3.1): site roots first, then extra per-agency
        // paths on the biggest sites (gov.br/abin-style). SAN-only
        // affiliates are deliberately absent — nothing but a certificate
        // ties them to the government (§3.3's last heuristic).
        let seedable: Vec<usize> =
            (0..sites.len()).filter(|i| !hosts[*i].san_only).collect();
        let mut landing_list: Vec<Url> = Vec::with_capacity(n_landing);
        for i in 0..n_landing {
            if i < seedable.len() {
                landing_list.push(sites[seedable[i]].landing.clone());
            } else {
                let site_idx = seedable[i % seedable.len()];
                let path = format!("/agency{}", i / seedable.len());
                let url = Url::https(hosts[site_idx].host.clone(), path.clone());
                let mut page = Page::empty(url.clone(), 12_000);
                // Link extra landings into the main tree.
                page.links.push(sites[site_idx].landing.clone());
                sites[site_idx].insert_page(page);
                landing_list.push(url);
            }
        }

        // Distribute the URL budget: depth 0 carries 84%, depth 1 carries
        // 11%, the rest decays to depth 7 (§4.2).
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let n_extra = (n_urls as f64 * 0.06) as u64; // non-government embeds
        for u in 0..n_urls + n_extra {
            let is_extra = u >= n_urls;
            // Owner page.
            let site_idx = self.rng.index(sites.len());
            let depth = sample_depth(&mut self.rng);
            let page_path = if depth == 0 { "/".to_string() } else { format!("/d{depth}") };
            // Resource host: weighted government hostname, or a tracker.
            let (res_host, category) = if is_extra {
                let k = self.rng.range(12) as u32;
                let host: Hostname =
                    format!("cdn{k}.webtrack{}.com", k % 4).parse().expect("valid host");
                (host, None)
            } else {
                let pick = self.rng.f64();
                let idx = cumulative
                    .iter()
                    .position(|c| pick <= *c)
                    .unwrap_or(hosts.len() - 1);
                (hosts[idx].host.clone(), Some(hosts[idx].category))
            };
            let (ctype, base) = sample_content(&mut self.rng);
            let skew = category.map_or(1.0, |c| profile.byte_skew[c.index()]);
            let noise = 0.3 + 1.4 * self.rng.f64().powi(2);
            let bytes = ((base as f64) * skew * noise).max(64.0) as u64;
            let path = format!("/r/{u}");
            let url = Url::https(res_host, path);
            sites[site_idx]
                .page_mut(&page_path)
                .expect("skeleton page exists")
                .resources
                .push(Resource::new(url, bytes, ctype));
        }

        for site in sites {
            self.corpus.insert(site);
        }
        self.landing_pages.insert(code, landing_list);
    }

    // ---- topsites (App. D) ---------------------------------------------------

    fn build_topsites(&mut self) {
        for code_str in TOPSITE_COUNTRIES {
            let code: CountryCode = code_str.parse().expect("static code");
            let row = crate::countries::country(code).expect("in sample");
            let profile = HostingProfile::for_country(row);
            let cc_lower = code.as_str().to_lowercase();
            let nat = self.national_as.get(&code).expect("national ASes built").clone();
            let n_sites = 24usize;
            let mut urls = Vec::with_capacity(n_sites);
            for i in 0..n_sites {
                // Category mix per Fig. 3 (topsites): self 18%, global
                // 78%, local 3%, foreign 1%.
                let r = self.rng.f64();
                let host: Hostname = format!("top{i}-{cc_lower}site.com")
                    .parse()
                    .expect("valid host");
                let apex = DnsName::from(&host);
                let mut zone = Zone::new(apex.clone());
                if r < 0.18 {
                    // Self-hosting: CNAME whose 2LD matches the site 2LD.
                    // 40% domestic enterprises, 60% foreign (a local
                    // audience browsing a US platform).
                    let domestic = self.rng.f64() < 0.4;
                    let asn = if domestic {
                        nat.local[0]
                    } else {
                        Asn(16509) // their own racks in a US cloud region
                    };
                    let location = if domestic { code } else { "US".parse().unwrap() };
                    let ip = self.server_for(asn, location, false);
                    let cdn_host: Hostname = format!("cdn.top{i}-{cc_lower}site.com")
                        .parse()
                        .expect("valid host");
                    let cdn_name = DnsName::from(&cdn_host);
                    zone.add(apex.clone(), RData::Cname(cdn_name.clone()));
                    zone.add(cdn_name, RData::A(ip));
                } else if r < 0.96 {
                    // Global CDN; roughly half served domestically.
                    let providers = self.country_providers.get(&code).cloned().unwrap_or_default();
                    let (asn, _) = providers.first().copied().unwrap_or((Asn(13335), 1.0));
                    let domestic = self.rng.f64() < 0.52;
                    let location = if domestic { code } else { "US".parse().unwrap() };
                    let provider = crate::providers::provider_by_asn(asn.value());
                    let anycast = provider.map(|p| p.anycast).unwrap_or(false) && domestic;
                    let ip = self.server_for(asn, location, anycast);
                    let provider_apex = self.provider_zone[&asn].clone();
                    let slug: String =
                        host.as_str().chars().map(|c| if c == '.' { '-' } else { c }).collect();
                    let edge = provider_apex
                        .child(&format!("{slug}.edge"))
                        .unwrap_or_else(|_| provider_apex.clone());
                    zone.add(apex.clone(), RData::Cname(edge.clone()));
                    let pz = self.provider_zone_data.get_mut(&asn).expect("provider zone");
                    pz.add(edge, RData::A(ip));
                } else if r < 0.99 {
                    // Local provider, flat A record.
                    let asn = nat.local[1 % nat.local.len()];
                    let ip = self.server_for(asn, code, false);
                    zone.add(apex.clone(), RData::A(ip));
                } else {
                    // Foreign provider.
                    let asn = nat.regional[0];
                    let location = self.pick_foreign_dest(&profile).unwrap_or(code);
                    let ip = self.server_for(asn, location, false);
                    zone.add(apex.clone(), RData::A(ip));
                }
                self.zones.push(zone);

                let landing = Url::https(host.clone(), "/");
                let mut site = Website::new(landing.clone());
                site.cert = Some(TlsCert::for_host(host.clone(), "WebTrust CA"));
                // One level of depth with a handful of resources.
                let sub = Url::https(host.clone(), "/home");
                let mut sub_page = Page::empty(sub.clone(), 30_000);
                for rix in 0..6 {
                    let (ctype, base) = sample_content(&mut self.rng);
                    sub_page.resources.push(Resource::new(
                        Url::https(host.clone(), format!("/asset/{rix}")),
                        base,
                        ctype,
                    ));
                }
                site.insert_page(sub_page);
                site.page_mut("/").expect("landing").links.push(sub);
                self.corpus.insert(site);
                urls.push(landing);
            }
            self.topsites.insert(code, urls);
        }
    }

    // ---- assembly -------------------------------------------------------------

    fn finish(mut self) -> World {
        // Thresholds from intercity distances (every known country).
        let thresholds = CountryThresholds::from_intercity_distances(
            COUNTRIES
                .iter()
                .chain(crate::countries::HOST_ONLY_COUNTRIES)
                .map(|row| (row.cc(), row.intercity_km())),
        );

        // HOIHO dictionary: city slugs with partial coverage.
        self.all_cities.sort_by(|a, b| a.name.cmp(&b.name));
        self.all_cities.dedup_by(|a, b| a.name == b.name && a.country == b.country);
        for city in &self.all_cities {
            let slug = city.slug();
            if det::unit(self.params.seed, &[det::hash_str(&slug), 20]) < self.params.hoiho_coverage
            {
                self.hoiho.learn(slug, city.country);
            }
        }

        // Reverse zone from every PTR-bearing server.
        let reverse = govhost_dns::reverse::build_reverse_zone(
            self.registry
                .servers()
                .iter()
                .filter_map(|s| s.ptr.as_deref().map(|p| (s.ip, p))),
        );

        // Resolver catalog: hostname zones, provider zones, reverse zone.
        let mut resolver = Resolver::new();
        for zone in self.zones.drain(..) {
            resolver.add_server(AuthoritativeServer::new(zone));
        }
        for (_, zone) in self.provider_zone_data.drain() {
            resolver.add_server(AuthoritativeServer::new(zone));
        }
        resolver.add_server(AuthoritativeServer::new(reverse));

        // GeoDb: truth plus injected wrong-country errors.
        let mut geodb = GeoDb::new();
        for (ip, country) in &self.geodb_truth {
            let location = any_country(*country)
                .map(|row| row.capital_city().location)
                .unwrap_or(govhost_netsim::coords::GeoPoint::new(0.0, 0.0));
            geodb.insert(*ip, GeoEntry { country: *country, location });
        }
        let decoys: Vec<(CountryCode, govhost_netsim::coords::GeoPoint)> = ["US", "DE", "SG", "BR"]
            .iter()
            .map(|c| {
                let code: CountryCode = c.parse().unwrap();
                (code, any_country(code).unwrap().capital_city().location)
            })
            .collect();
        geodb.inject_errors(self.params.geodb_error_rate, self.params.seed ^ 0xE0, &decoys);

        // Measured anycast census: the GCV latency test over the probe
        // fleet (ICMP-dead targets and regionally-confined deployments
        // are natural misses), plus the configured budget miss rate.
        let manycast = MAnycastSnapshot::detect(
            &self.registry,
            &self.fleet,
            &self.latency,
            self.params.anycast_false_negative,
            self.params.seed ^ 0xAC,
        );

        World {
            params: self.params,
            registry: self.registry,
            peeringdb: self.peeringdb,
            search: self.search,
            resolver,
            corpus: self.corpus,
            fleet: self.fleet,
            latency: self.latency,
            geodb,
            manycast,
            thresholds,
            hoiho: self.hoiho,
            ipmap: self.ipmap,
            landing_pages: self.landing_pages,
            topsites: self.topsites,
            truth: self.truth,
        }
    }
}

/// A planned government hostname, before materialization.
#[derive(Debug, Clone)]
struct HostPlan {
    host: Hostname,
    category: ProviderCategory,
    asn: Asn,
    location: CountryCode,
    anycast: bool,
    weight: f64,
    gov_tld: bool,
    san_only: bool,
}

/// Weighted random pick (deterministic given the RNG state).
fn weighted_pick(rng: &mut DetRng, pool: &[(Asn, f64)]) -> Asn {
    let total: f64 = pool.iter().map(|(_, w)| w).sum();
    let mut pick = rng.f64() * total;
    let mut chosen = pool[0].0;
    for (asn, w) in pool {
        pick -= w;
        chosen = *asn;
        if pick <= 0.0 {
            break;
        }
    }
    chosen
}

/// Integer apportionment by largest remainder.
fn largest_remainder(shares: &[f64; 4], total: usize) -> [usize; 4] {
    let mut counts = [0usize; 4];
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(4);
    let mut assigned = 0usize;
    for (i, s) in shares.iter().enumerate() {
        let exact = s * total as f64;
        counts[i] = exact.floor() as usize;
        assigned += counts[i];
        remainders.push((exact - exact.floor(), i));
    }
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite remainders"));
    for (_, i) in remainders.into_iter().take(total.saturating_sub(assigned)) {
        counts[i] += 1;
    }
    counts
}

/// Depth distribution matching §4.2: 84% on the landing page, 95% within
/// one level, the tail decaying to depth 7.
fn sample_depth(rng: &mut DetRng) -> u32 {
    let r = rng.f64();
    if r < 0.84 {
        0
    } else if r < 0.95 {
        1
    } else {
        // Geometric tail over depths 2..=7.
        let mut d = 2;
        let mut p = rng.f64();
        while p < 0.5 && d < 7 {
            d += 1;
            p = rng.f64();
        }
        d
    }
}

fn sample_content(rng: &mut DetRng) -> (ContentType, u64) {
    let r = rng.f64();
    let mut acc = 0.0;
    for (t, w, b) in CONTENT_MIX {
        acc += w;
        if r <= acc {
            return (*t, *b);
        }
    }
    let last = CONTENT_MIX.last().expect("nonempty mix");
    (last.0, last.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_remainder_sums_to_total() {
        for total in [1usize, 3, 10, 97] {
            let counts = largest_remainder(&[0.39, 0.34, 0.25, 0.02], total);
            assert_eq!(counts.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn largest_remainder_matches_shares() {
        let counts = largest_remainder(&[0.5, 0.25, 0.25, 0.0], 8);
        assert_eq!(counts, [4, 2, 2, 0]);
    }

    #[test]
    fn depth_distribution_shape() {
        let mut rng = DetRng::new(7);
        let n = 20_000;
        let mut at0 = 0;
        let mut within1 = 0;
        let mut max_d = 0;
        for _ in 0..n {
            let d = sample_depth(&mut rng);
            if d == 0 {
                at0 += 1;
            }
            if d <= 1 {
                within1 += 1;
            }
            max_d = max_d.max(d);
        }
        let f0 = at0 as f64 / n as f64;
        let f1 = within1 as f64 / n as f64;
        assert!((f0 - 0.84).abs() < 0.01, "depth-0 fraction {f0}");
        assert!((f1 - 0.95).abs() < 0.01, "within-1 fraction {f1}");
        assert!(max_d <= 7);
    }

    #[test]
    fn tiny_world_generates() {
        let world = World::generate(&GenParams::tiny());
        assert!(world.registry.as_count() > 600, "ASes: {}", world.registry.as_count());
        assert!(!world.registry.servers().is_empty());
        assert!(world.corpus.len() > 100);
        assert!(world.resolver.zone_count() > 100);
        // Every studied country except KR has landing pages.
        let ar: CountryCode = "AR".parse().unwrap();
        assert!(!world.landing(ar).is_empty());
        let kr: CountryCode = "KR".parse().unwrap();
        assert!(world.landing(kr).is_empty(), "Korea has no data in Table 8");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&GenParams::tiny());
        let b = World::generate(&GenParams::tiny());
        assert_eq!(a.registry.as_count(), b.registry.as_count());
        assert_eq!(a.registry.servers().len(), b.registry.servers().len());
        assert_eq!(a.corpus.len(), b.corpus.len());
        let ar: CountryCode = "AR".parse().unwrap();
        assert_eq!(a.landing(ar), b.landing(ar));
        // Spot-check server equality.
        for (sa, sb) in a.registry.servers().iter().zip(b.registry.servers()) {
            assert_eq!(sa.ip, sb.ip);
            assert_eq!(sa.asn, sb.asn);
            assert_eq!(sa.icmp_responsive, sb.icmp_responsive);
        }
    }

    #[test]
    fn seeds_differ() {
        let a = World::generate(&GenParams::tiny());
        let b = World::generate(&GenParams { seed: 43, ..GenParams::tiny() });
        let differs = a
            .registry
            .servers()
            .iter()
            .zip(b.registry.servers())
            .any(|(x, y)| x.icmp_responsive != y.icmp_responsive || x.ptr != y.ptr);
        assert!(differs, "different seeds must perturb the world");
    }

    #[test]
    fn france_depends_on_new_caledonia() {
        let world = World::generate(&GenParams::tiny());
        let gouv_nc: Hostname = "gouv.nc".parse().unwrap();
        let truth = world.truth.host(&gouv_nc).expect("gouv.nc exists");
        assert_eq!(truth.country.as_str(), "FR");
        assert_eq!(truth.location.as_str(), "NC");
        assert_eq!(truth.asn, Asn(18200), "hosted by OPT");
        // And it resolves.
        let ans = world.resolver.resolve_host(&gouv_nc, Some("FR".parse().unwrap()));
        assert!(ans.is_ok(), "gouv.nc must resolve: {ans:?}");
    }

    #[test]
    fn hostnames_resolve_from_domestic_vantage() {
        let world = World::generate(&GenParams::tiny());
        let mut checked = 0;
        for (host, truth) in world.truth.hosts.iter().take(200) {
            let ans = world.resolver.resolve_host(host, Some(truth.country));
            assert!(ans.is_ok(), "{host} must resolve: {ans:?}");
            let ips = ans.unwrap().addresses;
            assert!(!ips.is_empty());
            let server = world.registry.server_by_ip(ips[0]).expect("server exists");
            assert_eq!(server.asn, truth.asn, "{host} resolves into its operator's AS");
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn provider_footprints_match_fig10() {
        let world = World::generate(&GenParams::tiny());
        // Count countries per provider from ground truth.
        let mut counts: HashMap<Asn, std::collections::HashSet<CountryCode>> = HashMap::new();
        for t in world.truth.hosts.values() {
            if crate::providers::provider_by_asn(t.asn.value()).is_some() {
                counts.entry(t.asn).or_default().insert(t.country);
            }
        }
        // The assignment invariant is exact regardless of scale.
        let assigned = world.truth.provider_assignments.get(&Asn(13335)).unwrap();
        assert_eq!(assigned.len(), 49, "Cloudflare assigned to 49 countries (Fig. 10)");
        // Usage at tiny scale is sparse; full coverage is checked by the
        // full-scale calibration test.
        let cf = counts.get(&Asn(13335)).map(|s| s.len()).unwrap_or(0);
        assert!(cf >= 6, "Cloudflare used by several countries even tiny, got {cf}");
    }

    #[test]
    fn whois_surface_works_for_generated_servers() {
        let world = World::generate(&GenParams::tiny());
        let whois = govhost_netsim::whois::WhoisService::new(&world.registry);
        let mut ok = 0;
        for server in world.registry.servers().iter().take(100) {
            let rec = whois.query(server.ip).expect("every server IP is allocated");
            assert_eq!(rec.origin, server.asn);
            ok += 1;
        }
        assert_eq!(ok, 100);
    }

    #[test]
    fn geo_restricted_sites_exist_in_mexico() {
        let world = World::generate(&GenParams::tiny());
        let mx: CountryCode = "MX".parse().unwrap();
        let restricted = world
            .corpus
            .sites()
            .filter(|s| s.geo_restricted_to == Some(mx))
            .count();
        assert!(restricted > 0, "Mexico has geo-blocked sites (footnote 1)");
    }

    #[test]
    fn topsites_generated_for_comparison_countries() {
        let world = World::generate(&GenParams::tiny());
        for code in TOPSITE_COUNTRIES {
            let cc: CountryCode = code.parse().unwrap();
            let tops = world.topsites.get(&cc).expect("topsites exist");
            assert_eq!(tops.len(), 24);
            // They resolve.
            let ans = world.resolver.resolve_host(tops[0].hostname(), Some(cc));
            assert!(ans.is_ok(), "topsite resolves: {ans:?}");
        }
    }

    #[test]
    fn hostnames_follow_each_countrys_convention() {
        let world = World::generate(&GenParams::tiny());
        for (host, truth) in &world.truth.hosts {
            if truth.san_only || host.as_str() == "gouv.nc" {
                continue;
            }
            let cc_lower = truth.country.as_str().to_lowercase();
            if truth.gov_tld {
                // A gov-TLD hostname must actually match the Table 1
                // patterns the classifier implements.
                let labels: Vec<&str> = host.labels().collect();
                let n = labels.len();
                let tokens =
                    ["gov", "gob", "gouv", "gub", "go", "govt", "admin", "mil", "fed", "guv"];
                let ok = tokens.contains(&labels[n - 1])
                    || (n >= 2 && tokens.contains(&labels[n - 2]));
                assert!(ok, "{host} marked gov_tld but matches no pattern");
            } else {
                assert!(
                    host.as_str().ends_with(&format!(".{cc_lower}")),
                    "non-TLD hostname {host} must sit under the ccTLD"
                );
            }
        }
    }

    #[test]
    fn drift_one_empties_the_state_category() {
        let world =
            World::generate(&GenParams { third_party_drift: 1.0, ..GenParams::tiny() });
        let state = world
            .truth
            .hosts
            .values()
            .filter(|t| !t.san_only && t.category == ProviderCategory::GovtSoe)
            .count();
        let total = world.truth.hosts.len();
        // France's pinned gouv.nc and apportionment floors survive; the
        // bulk of the state category must be gone.
        assert!(
            (state as f64) < total as f64 * 0.05,
            "full drift leaves {state}/{total} state hostnames"
        );
    }

    #[test]
    fn host_weights_sum_to_one_per_country() {
        // The planner normalizes per-country URL weights; verify via the
        // planned URL totals and generated volumes instead of private
        // state: every studied country with data has hosts.
        let world = World::generate(&GenParams::tiny());
        for row in COUNTRIES.iter().filter(|r| r.hostnames > 0) {
            let hosts = world
                .truth
                .hosts
                .values()
                .filter(|t| t.country == row.cc())
                .count();
            assert!(hosts >= 3, "{}: only {hosts} hosts", row.code);
        }
    }

    #[test]
    fn anycast_exists_and_snapshot_sees_most() {
        let world = World::generate(&GenParams::tiny());
        let anycast_servers =
            world.registry.servers().iter().filter(|s| s.anycast).count();
        assert!(anycast_servers > 10, "anycast servers: {anycast_servers}");
        assert!(world.manycast.len() > anycast_servers / 2);
    }
}

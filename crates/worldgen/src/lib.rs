#![deny(missing_docs)]
//! # govhost-worldgen
//!
//! The deterministic synthetic world generator. It embeds the paper's
//! *real* published data — Table 9 (country selection, indices, VPN
//! providers), Table 8 (per-country landing/internal URL and hostname
//! counts) — plus per-country hosting profiles reconstructed from every
//! number the paper quotes (Argentina ~90% third-party, Uruguay 98%
//! Govt&SOE bytes, Mexico serving 79% of URLs from the US, China 26% from
//! Japan, France 18% from New Caledonia, Cloudflare present in 49
//! countries, ...). Where the paper reports only regional aggregates, the
//! generator draws country-level values around those aggregates with
//! seeded dispersion.
//!
//! [`World::generate`] turns the profiles into a fully concrete simulated
//! Internet: AS registry and prefix allocations, servers (unicast and
//! anycast) with PTR records, WHOIS/PeeringDB/search surfaces, DNS zones
//! (with CDN-style CNAME chains and geo-routed answers), the web corpus of
//! government sites (and topsites for the 14 comparison countries), the
//! probe fleet, the imperfect geolocation database, and the MAnycast2
//! snapshot.
//!
//! The measurement pipeline in `govhost-core` then recovers the paper's
//! findings from these *observable surfaces only* — the ground truth kept
//! in [`truth::GroundTruth`] exists for test oracles and calibration
//! checks, never for the pipeline itself.

pub mod calibration;
pub mod countries;
pub mod generate;
pub mod params;
pub mod profiles;
pub mod providers;
pub mod shock;
pub mod tick;
pub mod truth;
pub mod world;

pub use calibration::{CalibrationCheck, CalibrationReport};
pub use countries::{CountryRow, COUNTRIES, HOST_ONLY_COUNTRIES};
pub use params::GenParams;
pub use profiles::{DominantCategory, HostingProfile, TldStyle};
pub use providers::{provider_by_asn, GlobalProvider, GLOBAL_PROVIDERS};
pub use shock::{DarkCause, DarkHost, ShockReport};
pub use tick::{
    default_systems, run_year, systems_from_env, systems_from_spec, TickOutcome, TickReport,
    TickSystem, UnknownTickError, TICKS_ENV,
};
pub use truth::GroundTruth;
pub use world::World;

/// Common imports for downstream crates.
pub mod prelude {
    pub use crate::params::GenParams;
    pub use crate::world::World;
}

//! Generation parameters.

/// Knobs controlling world generation. Everything is deterministic in
/// `seed`; `scale` trades fidelity for speed by sampling the paper's URL
/// volumes down proportionally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Master seed; every derived random stream is keyed off it.
    pub seed: u64,
    /// Fraction of the paper's per-country URL/hostname volumes to
    /// generate. `1.0` reproduces Table 3's ~1M-URL dataset; `0.02` builds
    /// a laptop-test world in milliseconds.
    pub scale: f64,
    /// MAnycast2 false-negative rate (anycast addresses the detector
    /// misses).
    pub anycast_false_negative: f64,
    /// Fraction of geolocation-database rows corrupted to a wrong country
    /// (Darwich et al.'s error tail).
    pub geodb_error_rate: f64,
    /// Fraction of server IPs present in the IPmap cache.
    pub ipmap_coverage: f64,
    /// Fraction of servers with PTR records.
    pub ptr_coverage: f64,
    /// Fraction of city tokens the HOIHO dictionary knows.
    pub hoiho_coverage: f64,
    /// PeeringDB coverage of government networks (PeeringDB famously
    /// under-covers them, §3.4).
    pub peeringdb_gov_coverage: f64,
    /// Fraction of state organizations discoverable through web search.
    pub search_coverage: f64,
    /// Longitudinal drift: share mass moved from Govt&SOE toward global
    /// providers in every country's profile (0 = the paper's 2024
    /// snapshot). Models the consolidation trend §2 describes and the
    /// longitudinal follow-up the paper cites (Kumar et al. 2023).
    pub third_party_drift: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            seed: 42,
            scale: 0.1,
            anycast_false_negative: 0.03,
            geodb_error_rate: 0.03,
            ipmap_coverage: 0.75,
            ptr_coverage: 0.8,
            hoiho_coverage: 0.9,
            peeringdb_gov_coverage: 0.35,
            search_coverage: 0.88,
            third_party_drift: 0.0,
        }
    }
}

impl GenParams {
    /// Full-fidelity parameters (Table 3 volumes).
    pub fn full() -> Self {
        Self { scale: 1.0, ..Self::default() }
    }

    /// A tiny world for fast tests.
    pub fn tiny() -> Self {
        Self { scale: 0.02, ..Self::default() }
    }

    /// Scale a paper volume down, keeping small-country minimums sane.
    pub fn scaled(&self, value: u32, min_if_nonzero: u32) -> u32 {
        if value == 0 {
            return 0;
        }
        ((value as f64 * self.scale).round() as u32).max(min_if_nonzero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_zero_and_minimum() {
        let p = GenParams { scale: 0.01, ..GenParams::default() };
        assert_eq!(p.scaled(0, 3), 0);
        assert_eq!(p.scaled(50, 3), 3, "0.5 rounds to 1, then min 3 applies");
        assert_eq!(p.scaled(10_000, 3), 100);
    }

    #[test]
    fn full_scale_is_identity() {
        let p = GenParams::full();
        assert_eq!(p.scaled(15_878, 1), 15_878);
    }

    #[test]
    fn defaults_are_probabilities() {
        let p = GenParams::default();
        for v in [
            p.anycast_false_negative,
            p.geodb_error_rate,
            p.ipmap_coverage,
            p.ptr_coverage,
            p.hoiho_coverage,
            p.peeringdb_gov_coverage,
            p.search_coverage,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

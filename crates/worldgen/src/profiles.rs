//! Per-country hosting profiles: the calibration layer between the
//! paper's published findings and the concrete world the generator builds.
//!
//! Every country gets a [`HostingProfile`] describing how its government
//! hosts: the URL share per provider category, byte-weight skew, the share
//! of URLs served from domestic soil, where the foreign remainder sits,
//! the domain-naming convention, and measurement-hostility knobs (ICMP
//! responsiveness, geo-restriction).
//!
//! Profiles come from three sources, in priority order:
//! 1. **Country-specific overrides** for every country the paper quotes a
//!    number for (Argentina ~90% third-party, Uruguay 98% Govt&SOE bytes,
//!    Italy 93% 3P Local, Mexico 79% of URLs from US servers, China 26%
//!    from Japan, France 18% from New Caledonia, NZ 40% from Australia,
//!    India 99.3% domestic, ...).
//! 2. **Dominant-category defaults** — the paper's Fig. 5 dendrogram
//!    splits the 61 countries into three branches by their leading hosting
//!    source; countries without specific quotes inherit their branch's
//!    default mix with deterministic per-country jitter.
//! 3. **Regional foreign-destination mixes** reproducing Fig. 9 and
//!    Table 5 (e.g. ECA cross-border stays 94.87% in-region, concentrated
//!    on Germany; MENA depends on France and the US; LAC leaves the region
//!    almost entirely, toward the US).

use crate::countries::CountryRow;
use govhost_netsim::det;
use govhost_types::{CountryCode, Region};

/// The leading hosting source of a country (Fig. 5's three branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DominantCategory {
    /// Government & state-owned infrastructure leads.
    GovtSoe,
    /// Local third-party providers lead.
    Local,
    /// Global providers lead.
    Global,
}

/// Government domain-naming convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TldStyle {
    /// `agency.gov` / `agency.mil` (United States).
    DotGov,
    /// `agency.gov.cc` (UK, Brazil-style English variant).
    GovCc,
    /// `agencia.gob.cc` (Spanish-speaking).
    GobCc,
    /// `agence.gouv.cc` (French-speaking).
    GouvCc,
    /// `agencia.gub.cc` (Uruguay).
    GubCc,
    /// `agency.go.cc` (Japan, Korea, Indonesia, Thailand).
    GoCc,
    /// `agency.govt.cc` (New Zealand).
    GovtCc,
    /// `amt.admin.cc` (Switzerland).
    AdminCc,
    /// No government suffix convention at all (Germany, Netherlands,
    /// Poland — the §8 limitation).
    Plain,
}

impl TldStyle {
    /// The suffix token this style places before the ccTLD, if any.
    pub fn token(&self) -> Option<&'static str> {
        match self {
            TldStyle::DotGov => Some("gov"),
            TldStyle::GovCc => Some("gov"),
            TldStyle::GobCc => Some("gob"),
            TldStyle::GouvCc => Some("gouv"),
            TldStyle::GubCc => Some("gub"),
            TldStyle::GoCc => Some("go"),
            TldStyle::GovtCc => Some("govt"),
            TldStyle::AdminCc => Some("admin"),
            TldStyle::Plain => None,
        }
    }
}

/// A country's complete hosting behaviour description.
#[derive(Debug, Clone)]
pub struct HostingProfile {
    /// Country code.
    pub code: CountryCode,
    /// Leading hosting source.
    pub dominant: DominantCategory,
    /// URL share per category: `[Govt&SOE, 3P Local, 3P Global,
    /// 3P Regional]`. Sums to 1.
    pub url_shares: [f64; 4],
    /// Mean bytes-per-URL multiplier per category (same order). Values
    /// above 1 make a category's bytes outweigh its URL count, which is
    /// how Fig. 2's URL/byte divergence (39% vs 47% for Govt&SOE) arises.
    pub byte_skew: [f64; 4],
    /// Fraction of URLs served from servers on domestic soil (Fig. 8b).
    pub domestic_server_share: f64,
    /// Where the foreign-served remainder sits: `(country, weight)`,
    /// weights summing to 1.
    pub foreign_dests: Vec<(CountryCode, f64)>,
    /// Domain-naming convention.
    pub tld_style: TldStyle,
    /// Fraction of government hostnames carrying the gov-TLD token
    /// (the rest are only identifiable by domain matching or SANs, §3.3).
    pub gov_tld_host_fraction: f64,
    /// Fraction of servers answering ICMP (drives the AP-vs-MG split in
    /// Table 4).
    pub icmp_responsive_rate: f64,
    /// Fraction of sites refusing non-domestic clients (footnote 1).
    pub geo_restricted_fraction: f64,
}

fn cc(code: &str) -> CountryCode {
    code.parse().expect("static country code")
}

/// Fig. 5 branch membership: countries whose leading source is
/// government/state-owned infrastructure.
const GOVT_DOMINANT: &[&str] = &[
    "BR", "VN", "RU", "IN", "AE", "UY", "CN", "EG", "RS", "BD", "DZ", "ES", "IL", "PK", "SE",
    "KR", "RO", "ID", "LV",
];

/// Countries whose leading source is local third parties.
const LOCAL_DOMINANT: &[&str] = &[
    "IT", "ZA", "TR", "PL", "EE", "DE", "BG", "CL", "CZ", "KZ", "PY", "HU", "UA", "PT", "BE",
    "NG", "JP",
];

/// Everyone else leads with global providers (25 countries, §7.2).
fn dominant_of(code: CountryCode) -> DominantCategory {
    if GOVT_DOMINANT.iter().any(|c| cc(c) == code) {
        DominantCategory::GovtSoe
    } else if LOCAL_DOMINANT.iter().any(|c| cc(c) == code) {
        DominantCategory::Local
    } else {
        DominantCategory::Global
    }
}

fn tld_style_of(code: CountryCode) -> TldStyle {
    match code.as_str() {
        "US" => TldStyle::DotGov,
        "MX" | "AR" | "CL" | "BO" | "ES" | "CR" | "PE" => TldStyle::GobCc,
        "UY" => TldStyle::GubCc,
        "FR" | "MA" | "DZ" | "NC" => TldStyle::GouvCc,
        "JP" | "KR" | "ID" | "TH" => TldStyle::GoCc,
        "NZ" => TldStyle::GovtCc,
        "CH" => TldStyle::AdminCc,
        // The paper's §8 names Germany, Poland and the Netherlands as
        // convention-free; Belgium and Hungary behave likewise (their huge
        // URL volumes drive the 72% domain-matching share of §4.2).
        "DE" | "PL" | "NL" | "BE" | "HU" | "DK" | "NO" | "FI" | "AT" => TldStyle::Plain,
        _ => TldStyle::GovCc,
    }
}

/// Deterministic per-country jitter in `[-amp, +amp]`, stable across runs
/// and independent of the generation seed (profiles are calibration, not
/// randomness).
fn jitter(code: CountryCode, channel: u64, amp: f64) -> f64 {
    let key = govhost_netsim::det::hash_str(code.as_str());
    (det::unit(0xCA11_B4A7E, &[key, channel]) * 2.0 - 1.0) * amp
}

fn normalize(mut shares: [f64; 4]) -> [f64; 4] {
    for s in &mut shares {
        *s = s.max(0.0);
    }
    let total: f64 = shares.iter().sum();
    if total > 0.0 {
        for s in &mut shares {
            *s /= total;
        }
    }
    shares
}

/// Category URL shares `[Govt&SOE, Local, Global, Regional]`.
fn url_shares_of(code: CountryCode, dominant: DominantCategory) -> [f64; 4] {
    // Countries with specific quotes in the paper come first.
    let specific: Option<[f64; 4]> = match code.as_str() {
        "UY" => Some([0.95, 0.03, 0.02, 0.00]), // 98% of bytes Govt&SOE, 2% 3P
        "AR" => Some([0.10, 0.14, 0.73, 0.03]), // ~90% third-party, global-led
        "BR" => Some([0.72, 0.14, 0.13, 0.01]),
        "CL" => Some([0.15, 0.62, 0.21, 0.02]),
        "ES" => Some([0.64, 0.20, 0.15, 0.01]), // 64% Govt&SOE
        "IT" => Some([0.04, 0.93, 0.03, 0.00]), // 93% 3P Local
        "NL" => Some([0.29, 0.27, 0.41, 0.03]), // 41% 3P Global
        "IN" => Some([0.86, 0.06, 0.07, 0.01]),
        "MY" => Some([0.18, 0.24, 0.56, 0.02]),
        "ID" => Some([0.60, 0.25, 0.13, 0.02]), // 58% of bytes Govt&SOE
        "US" => Some([0.25, 0.17, 0.58, 0.00]), // NA Fig. 4a
        "MX" => Some([0.12, 0.06, 0.79, 0.03]), // foreign reliance dwarfs the rest
        "CA" => Some([0.22, 0.15, 0.62, 0.01]), // 79% of bytes global
        "FR" => Some([0.22, 0.28, 0.44, 0.06]), // 42% of bytes global
        "NG" => Some([0.01, 0.45, 0.40, 0.14]), // SSA Fig. 4a
        "ZA" => Some([0.02, 0.47, 0.38, 0.13]),
        "MA" => Some([0.16, 0.08, 0.72, 0.04]), // MENA's global-led outlier
        "CN" => Some([0.62, 0.10, 0.05, 0.23]), // 26% served from Japan (regional 3P)
        "MD" => Some([0.10, 0.13, 0.75, 0.02]), // Cloudflare up to 72% of bytes
        "SG" => Some([0.08, 0.12, 0.79, 0.01]), // Amazon 97% of bytes
        "NO" => Some([0.18, 0.17, 0.64, 0.01]), // Hetzner 57% of bytes
        "KZ" => Some([0.25, 0.61, 0.13, 0.01]),
        "VN" => Some([0.78, 0.12, 0.08, 0.02]),
        "RU" => Some([0.75, 0.18, 0.05, 0.02]), // Jonker et al.: hosted within RU
        // Belgium and Hungary carry 44% of all URLs (Table 8); their mixes
        // dominate the URL-weighted aggregates.
        "BE" => Some([0.30, 0.45, 0.22, 0.03]),
        "HU" => Some([0.35, 0.45, 0.18, 0.02]),
        _ => None,
    };
    if let Some(s) = specific {
        return normalize(s);
    }
    let base = match dominant {
        DominantCategory::GovtSoe => [0.68, 0.14, 0.15, 0.03],
        DominantCategory::Local => [0.25, 0.55, 0.18, 0.02],
        // A plurality on global providers, not a majority: regional
        // aggregates (Fig. 4) show even global-led countries keep large
        // state/local shares.
        DominantCategory::Global => [0.27, 0.22, 0.48, 0.03],
    };
    let mut shares = base;
    for (i, s) in shares.iter_mut().enumerate() {
        *s += jitter(code, i as u64, 0.06);
    }
    normalize(shares)
}

/// Byte-weight multipliers per category.
fn byte_skew_of(code: CountryCode) -> [f64; 4] {
    match code.as_str() {
        // Uruguay: 98% of bytes from Govt&SOE on 95% of URLs.
        "UY" => [2.0, 0.6, 0.6, 0.5],
        // Canada: 79% of bytes global on ~62% of URLs.
        "CA" => [0.55, 0.55, 1.7, 0.5],
        // France: 42% of bytes global on 44% of URLs (near-neutral).
        "FR" => [1.2, 0.9, 0.95, 0.8],
        // Indonesia: 58% bytes Govt&SOE on ~60% URLs (near-neutral).
        "ID" => [1.0, 1.0, 1.0, 1.0],
        // Singapore: Amazon serves 97% of bytes.
        "SG" => [0.2, 0.2, 2.2, 0.2],
        // Norway: Hetzner 57% of bytes.
        "NO" => [0.7, 0.7, 1.5, 0.6],
        // South Asia: 95% of bytes from Govt&SOE (Fig. 4b) on ~80% of URLs.
        "IN" | "BD" | "PK" => [1.9, 0.4, 0.4, 0.4],
        // MENA: 71% bytes Govt&SOE on 43% of URLs.
        "EG" | "DZ" | "AE" | "IL" => [2.2, 0.5, 0.5, 0.4],
        // Default: government pages are heavier (Fig. 2: 39%→47%).
        _ => [1.35, 0.85, 0.9, 0.8],
    }
}

/// Countries whose §6.3 offshore figures the paper quotes exactly.
fn has_specific_location(code: CountryCode) -> bool {
    matches!(
        code.as_str(),
        "MX" | "CR" | "NZ" | "CN" | "MA" | "EG" | "DZ" | "FR" | "BR" | "IN" | "US" | "CA"
            | "NL" | "RU"
    )
}

/// Domestic-service share and foreign destinations (Figs. 8b, 9b; §6.3).
fn location_of(code: CountryCode, region: Region) -> (f64, Vec<(CountryCode, f64)>) {
    let d = |pairs: &[(&str, f64)]| -> Vec<(CountryCode, f64)> {
        pairs.iter().map(|(c, w)| (cc(c), *w)).collect()
    };
    // Country-specific bilateral cases quoted in §6.3.
    match code.as_str() {
        "MX" => return (0.2078, d(&[("US", 1.0)])), // 79.22% from the US
        "CR" => return (0.503, d(&[("US", 0.98), ("BR", 0.02)])), // 49.70% from the US
        "NZ" => return (0.58, d(&[("AU", 0.96), ("US", 0.04)])), // 40% from Australia
        "CN" => return (0.736, d(&[("JP", 1.0)])), // 26.4% from Japan
        "MA" => return (0.5162, d(&[("FR", 0.617), ("US", 0.23), ("DE", 0.153)])), // 48.38% foreign, 29.82% France
        "EG" => return (0.789, d(&[("FR", 0.40), ("US", 0.40), ("DE", 0.20)])), // 21.1% foreign
        "DZ" => return (0.8138, d(&[("FR", 0.62), ("US", 0.38)])), // 18.62% foreign
        "FR" => return (0.797, d(&[("NC", 0.888), ("DE", 0.06), ("US", 0.052)])), // 18.03% from New Caledonia
        "BR" => return (0.9805, d(&[("US", 0.92), ("DE", 0.08)])), // only 1.78% from the US
        "IN" => return (0.993, d(&[("US", 0.55), ("SG", 0.45)])), // 99.3% domestic
        "US" => return (0.998, d(&[("CA", 0.55), ("DE", 0.45)])),
        "CA" => return (0.952, d(&[("US", 0.85), ("DE", 0.09), ("GB", 0.06)])),
        "NL" => return (0.90, d(&[("DE", 0.55), ("IE", 0.25), ("US", 0.20)])),
        "RU" => return (0.97, d(&[("DE", 0.7), ("NL", 0.3)])), // mostly within RU
        _ => {}
    }
    // EU members keep foreign hosting overwhelmingly inside the EU
    // (the paper's GDPR finding: 98.3% of EU URLs served within the EU).
    if crate::countries::is_eu(code) {
        return (
            0.87,
            d(&[
                ("DE", 0.30),
                ("FR", 0.14),
                ("NL", 0.13),
                ("IE", 0.08),
                ("AT", 0.07),
                ("FI", 0.05),
                ("LU", 0.04),
                ("SK", 0.05),
                ("PL", 0.06),
                ("CZ", 0.04),
                ("US", 0.02),
                ("GB", 0.04),
            ]),
        );
    }
    // Regional defaults (Fig. 8b medians; Table 5 in-region mixes).
    match region {
        Region::NorthAmerica => (0.98, d(&[("US", 0.6), ("DE", 0.4)])),
        Region::LatinAmericaCaribbean => {
            (0.80, d(&[("US", 0.90), ("BR", 0.029), ("DE", 0.05), ("NL", 0.021)]))
        }
        Region::EuropeCentralAsia => (
            0.86,
            d(&[
                ("DE", 0.30),
                ("FR", 0.11),
                ("NL", 0.11),
                ("GB", 0.07),
                ("AT", 0.05),
                ("FI", 0.04),
                ("IE", 0.04),
                ("LU", 0.02),
                ("SK", 0.04),
                ("PL", 0.06),
                ("CZ", 0.05),
                ("RO", 0.04),
                ("TR", 0.03),
                ("US", 0.02),
            ]),
        ),
        Region::MiddleEastNorthAfrica => (0.74, d(&[("FR", 0.45), ("US", 0.35), ("DE", 0.20)])),
        Region::SubSaharanAfrica => {
            (0.52, d(&[("US", 0.47), ("DE", 0.25), ("FR", 0.20), ("IE", 0.05), ("ZA", 0.03)]))
        }
        Region::SouthAsia => (0.94, d(&[("US", 0.60), ("SG", 0.40)])),
        Region::EastAsiaPacific => {
            (0.96, d(&[("JP", 0.57), ("AU", 0.12), ("SG", 0.11), ("US", 0.20)]))
        }
    }
}

/// Share of hostnames carrying the country's gov-TLD token.
fn gov_tld_fraction_of(code: CountryCode, style: TldStyle) -> f64 {
    match style {
        TldStyle::Plain => 0.0,
        _ => match code.as_str() {
            // Heavy, disciplined gov-TLD users.
            "US" | "GB" | "AU" | "NZ" | "IN" | "BD" | "UY" | "TR" => 0.80,
            // Most countries mix gov-TLD portals with plainly-named SOEs
            // and agencies (the 72% domain-matching share of §4.2).
            _ => 0.45,
        },
    }
}

impl HostingProfile {
    /// Apply longitudinal drift: move `amount` of URL-share mass from
    /// Govt&SOE toward global providers (bounded by what is available),
    /// and erode domestic serving proportionally — the consolidation
    /// trajectory §2 describes. `amount` of 0 returns the profile
    /// unchanged; countries already fully on third parties saturate.
    pub fn drifted(mut self, amount: f64) -> HostingProfile {
        let moved = (self.url_shares[0] * amount.clamp(0.0, 1.0)).min(self.url_shares[0]);
        self.url_shares[0] -= moved;
        self.url_shares[2] += moved;
        // Global providers serve partly from abroad: domestic share decays
        // with the moved mass.
        self.domestic_server_share =
            (self.domestic_server_share - moved * 0.25).clamp(0.2, 1.0);
        self
    }

    /// The profile for a studied country.
    pub fn for_country(row: &CountryRow) -> HostingProfile {
        let code = row.cc();
        let dominant = dominant_of(code);
        let tld_style = tld_style_of(code);
        let (base_domestic, mut foreign_dests) = location_of(code, row.region);
        // App. E's observed effects, planted: richer / network-readier
        // countries host more domestically; larger Internet populations
        // host more abroad. Applied only where the paper gives no
        // country-specific figure (specific overrides stay exact).
        let domestic_server_share = if has_specific_location(code) {
            base_domestic
        } else {
            // Raw-scale z-scores, matching the regression's standardized
            // features (users and GDP are heavy-tailed, so the few large
            // countries carry the effect, as in the paper's data).
            let z_nri = (row.nri - 58.0) / 14.0;
            let z_gdp = ((row.gdp_k - 25.0) / 25.0).clamp(-1.5, 2.0);
            // Log-scaled population kick: countries past ~60M users host
            // visibly more abroad (capacity pressure), the paper's
            // strongest coefficient.
            let users_kick = (row.internet_users_m() / 60.0).ln().max(0.0);
            (base_domestic + 0.06 * z_nri + 0.06 * z_gdp - 0.12 * users_kick).clamp(0.30, 0.995)
        };
        // A country never lists itself as a foreign destination.
        foreign_dests.retain(|(c, _)| *c != code);
        let total: f64 = foreign_dests.iter().map(|(_, w)| w).sum();
        if total > 0.0 {
            for (_, w) in &mut foreign_dests {
                *w /= total;
            }
        }
        HostingProfile {
            code,
            dominant,
            url_shares: url_shares_of(code, dominant),
            byte_skew: byte_skew_of(code),
            domestic_server_share,
            foreign_dests,
            tld_style,
            gov_tld_host_fraction: gov_tld_fraction_of(code, tld_style),
            // ~40% of unicast validations succeed via AP in Table 4; the
            // rest lean on multistage. Driven by ICMP responsiveness.
            icmp_responsive_rate: 0.44 + jitter(code, 77, 0.08),
            geo_restricted_fraction: match code.as_str() {
                "MX" => 0.08, // prodecon.gob.mx and friends
                "CN" | "RU" => 0.10,
                _ => 0.01,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countries::{country, COUNTRIES};

    fn profile(code: &str) -> HostingProfile {
        let row = country(code.parse().unwrap()).expect("in sample");
        HostingProfile::for_country(row)
    }

    #[test]
    fn shares_normalized_for_every_country() {
        for row in COUNTRIES {
            let p = HostingProfile::for_country(row);
            let sum: f64 = p.url_shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: shares sum {sum}", row.code);
            assert!(p.url_shares.iter().all(|s| *s >= 0.0));
            let fsum: f64 = p.foreign_dests.iter().map(|(_, w)| w).sum();
            assert!(
                p.foreign_dests.is_empty() || (fsum - 1.0).abs() < 1e-9,
                "{}: foreign weights sum {fsum}",
                row.code
            );
            assert!((0.0..=1.0).contains(&p.domestic_server_share));
            assert!((0.0..=1.0).contains(&p.gov_tld_host_fraction));
        }
    }

    #[test]
    fn dendrogram_branch_sizes_match_section7() {
        let mut govt = 0;
        let mut local = 0;
        let mut global = 0;
        for row in COUNTRIES {
            match dominant_of(row.cc()) {
                DominantCategory::GovtSoe => govt += 1,
                DominantCategory::Local => local += 1,
                DominantCategory::Global => global += 1,
            }
        }
        assert_eq!(govt, 19, "19 Govt&SOE-dominant countries (§7.2)");
        assert_eq!(global, 25, "25 3P-Global-dominant countries (§7.2)");
        assert_eq!(local, 17);
    }

    #[test]
    fn quoted_countries_have_quoted_leanings() {
        assert!(profile("UY").url_shares[0] > 0.9, "Uruguay is Govt&SOE");
        let ar = profile("AR");
        assert!(ar.url_shares[1] + ar.url_shares[2] + ar.url_shares[3] > 0.85, "Argentina ~90% 3P");
        assert!(profile("IT").url_shares[1] > 0.9, "Italy 93% 3P Local");
        assert!(profile("ES").url_shares[0] > 0.6, "Spain 64% Govt&SOE");
    }

    #[test]
    fn bilateral_destinations_match_section6() {
        let mx = profile("MX");
        assert!((mx.domestic_server_share - 0.2078).abs() < 1e-9);
        assert_eq!(mx.foreign_dests[0].0.as_str(), "US");

        let fr = profile("FR");
        let nc_weight =
            fr.foreign_dests.iter().find(|(c, _)| c.as_str() == "NC").map(|(_, w)| *w);
        let foreign_total = 1.0 - fr.domestic_server_share;
        let nc_share = nc_weight.unwrap() * foreign_total;
        assert!((nc_share - 0.1803).abs() < 0.01, "France→NC ≈ 18.03%, got {nc_share}");

        let cn = profile("CN");
        let jp_share = (1.0 - cn.domestic_server_share)
            * cn.foreign_dests.iter().find(|(c, _)| c.as_str() == "JP").unwrap().1;
        assert!((jp_share - 0.264).abs() < 0.01, "China→Japan ≈ 26.4%, got {jp_share}");
    }

    #[test]
    fn no_country_is_its_own_foreign_destination() {
        for row in COUNTRIES {
            let p = HostingProfile::for_country(row);
            assert!(p.foreign_dests.iter().all(|(c, _)| *c != row.cc()), "{}", row.code);
        }
    }

    #[test]
    fn plain_style_has_no_gov_hosts() {
        assert_eq!(profile("DE").gov_tld_host_fraction, 0.0);
        assert_eq!(profile("NL").gov_tld_host_fraction, 0.0);
        assert!(profile("GB").gov_tld_host_fraction > 0.5);
    }

    #[test]
    fn tld_tokens() {
        assert_eq!(TldStyle::GouvCc.token(), Some("gouv"));
        assert_eq!(TldStyle::Plain.token(), None);
        assert_eq!(profile("UY").tld_style, TldStyle::GubCc);
        assert_eq!(profile("JP").tld_style, TldStyle::GoCc);
        assert_eq!(profile("US").tld_style, TldStyle::DotGov);
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = profile("GE");
        let b = profile("GE");
        assert_eq!(a.url_shares, b.url_shares);
        assert_eq!(a.icmp_responsive_rate, b.icmp_responsive_rate);
    }
}

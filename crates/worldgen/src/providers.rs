//! The 28 global providers of Fig. 10.
//!
//! ASNs and names follow the figure's x-axis; `target_countries` is each
//! provider's footprint among the 61 studied governments, with the
//! headline values from the paper (Cloudflare 49, Amazon 31, Microsoft
//! 28) exact and the long tail decaying as in the histogram.

use govhost_types::{Asn, CountryCode};

/// One global provider.
#[derive(Debug, Clone, Copy)]
pub struct GlobalProvider {
    /// Primary AS number (as labelled in Fig. 10).
    pub asn: u32,
    /// Display name.
    pub name: &'static str,
    /// Organization legal name (WHOIS `org-name`).
    pub org: &'static str,
    /// Country of registration.
    pub registered_in: &'static str,
    /// How many of the 61 studied governments use this provider.
    pub target_countries: usize,
    /// Whether the provider fronts content on anycast addresses
    /// (CDN/security providers) rather than regional unicast (clouds and
    /// hosters).
    pub anycast: bool,
}

impl GlobalProvider {
    /// Typed ASN.
    pub fn asn(&self) -> Asn {
        Asn(self.asn)
    }

    /// Typed registration country.
    pub fn cc(&self) -> CountryCode {
        self.registered_in.parse().expect("static codes are valid")
    }

    /// DNS-safe lowercase slug derived from the display name
    /// (`"Google Cloud"` → `"googlecloud"`). The generator derives the
    /// provider's infrastructure names from it.
    pub fn slug(&self) -> String {
        self.name.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_lowercase()
    }

    /// The apex of the provider's own DNS zone (`{slug}.net`), where the
    /// generator parks CDN edge names and managed-DNS server names. A
    /// name under this apex depends on the provider's infrastructure —
    /// the shared-fate test a provider outage uses.
    pub fn zone_apex(&self) -> govhost_dns::DnsName {
        format!("{}.net", self.slug()).parse().expect("static slugs are valid DNS names")
    }
}

/// All 28 global providers, ordered by footprint (Fig. 10's x-axis).
pub const GLOBAL_PROVIDERS: &[GlobalProvider] = &[
    GlobalProvider { asn: 13335, name: "Cloudflare", org: "Cloudflare, Inc.", registered_in: "US", target_countries: 49, anycast: true },
    GlobalProvider { asn: 16509, name: "Amazon", org: "Amazon.com, Inc.", registered_in: "US", target_countries: 31, anycast: false },
    GlobalProvider { asn: 8075, name: "Microsoft", org: "Microsoft Corporation", registered_in: "US", target_countries: 28, anycast: false },
    GlobalProvider { asn: 24940, name: "Hetzner", org: "Hetzner Online GmbH", registered_in: "DE", target_countries: 21, anycast: false },
    GlobalProvider { asn: 396982, name: "Google Cloud", org: "Google LLC", registered_in: "US", target_countries: 19, anycast: false },
    GlobalProvider { asn: 16276, name: "OVH", org: "OVH SAS", registered_in: "FR", target_countries: 17, anycast: false },
    GlobalProvider { asn: 19551, name: "Incapsula", org: "Incapsula Inc", registered_in: "US", target_countries: 15, anycast: true },
    GlobalProvider { asn: 14061, name: "DigitalOcean", org: "DigitalOcean, LLC", registered_in: "US", target_countries: 13, anycast: false },
    GlobalProvider { asn: 15169, name: "Google", org: "Google LLC", registered_in: "US", target_countries: 12, anycast: false },
    GlobalProvider { asn: 63949, name: "Akamai Linode", org: "Akamai Technologies (Linode)", registered_in: "US", target_countries: 10, anycast: false },
    GlobalProvider { asn: 54113, name: "Fastly", org: "Fastly, Inc.", registered_in: "US", target_countries: 9, anycast: true },
    GlobalProvider { asn: 209242, name: "Cloudflare London", org: "Cloudflare London, LLC", registered_in: "GB", target_countries: 8, anycast: true },
    GlobalProvider { asn: 46606, name: "Unified Layer", org: "Unified Layer", registered_in: "US", target_countries: 7, anycast: false },
    GlobalProvider { asn: 30148, name: "Sucuri", org: "Sucuri", registered_in: "US", target_countries: 6, anycast: true },
    GlobalProvider { asn: 2635, name: "Automattic", org: "Automattic, Inc", registered_in: "US", target_countries: 6, anycast: false },
    GlobalProvider { asn: 20940, name: "Akamai", org: "Akamai International B.V.", registered_in: "NL", target_countries: 5, anycast: true },
    GlobalProvider { asn: 36351, name: "SoftLayer", org: "SoftLayer Technologies (IBM)", registered_in: "US", target_countries: 5, anycast: false },
    GlobalProvider { asn: 53831, name: "Squarespace", org: "Squarespace, Inc.", registered_in: "US", target_countries: 4, anycast: false },
    GlobalProvider { asn: 14618, name: "Amazon East", org: "Amazon.com, Inc.", registered_in: "US", target_countries: 4, anycast: false },
    GlobalProvider { asn: 32475, name: "SingleHop", org: "SingleHop LLC", registered_in: "US", target_countries: 3, anycast: false },
    GlobalProvider { asn: 20473, name: "The Constant Company", org: "The Constant Company, LLC (Vultr)", registered_in: "US", target_countries: 3, anycast: false },
    GlobalProvider { asn: 54641, name: "InMotion", org: "InMotion Hosting, Inc.", registered_in: "US", target_countries: 3, anycast: false },
    GlobalProvider { asn: 19871, name: "Network Solutions", org: "Network Solutions, LLC", registered_in: "US", target_countries: 2, anycast: false },
    GlobalProvider { asn: 8560, name: "IONOS", org: "IONOS SE", registered_in: "DE", target_countries: 2, anycast: false },
    GlobalProvider { asn: 26496, name: "GoDaddy", org: "GoDaddy.com, LLC", registered_in: "US", target_countries: 2, anycast: false },
    GlobalProvider { asn: 398101, name: "GoDaddy DV", org: "GoDaddy.com, LLC", registered_in: "US", target_countries: 2, anycast: false },
    GlobalProvider { asn: 30447, name: "InterNap", org: "Internap Holding LLC", registered_in: "US", target_countries: 1, anycast: false },
    GlobalProvider { asn: 3223, name: "Voxility", org: "Voxility LLP", registered_in: "GB", target_countries: 1, anycast: false },
];

/// Look up a provider by ASN.
pub fn provider_by_asn(asn: u32) -> Option<&'static GlobalProvider> {
    GLOBAL_PROVIDERS.iter().find(|p| p.asn == asn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_eight_providers() {
        assert_eq!(GLOBAL_PROVIDERS.len(), 28);
    }

    #[test]
    fn headline_footprints_match_paper() {
        assert_eq!(provider_by_asn(13335).unwrap().target_countries, 49, "Cloudflare");
        assert_eq!(provider_by_asn(16509).unwrap().target_countries, 31, "Amazon");
        assert_eq!(provider_by_asn(8075).unwrap().target_countries, 28, "Microsoft");
    }

    #[test]
    fn ordering_is_nonincreasing() {
        for w in GLOBAL_PROVIDERS.windows(2) {
            assert!(w[0].target_countries >= w[1].target_countries);
        }
    }

    #[test]
    fn asns_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in GLOBAL_PROVIDERS {
            assert!(seen.insert(p.asn), "duplicate ASN {}", p.asn);
        }
    }

    #[test]
    fn footprints_bounded_by_sample_size() {
        for p in GLOBAL_PROVIDERS {
            assert!(p.target_countries >= 1 && p.target_countries <= 61);
        }
    }

    #[test]
    fn registration_countries_parse() {
        for p in GLOBAL_PROVIDERS {
            let _ = p.cc();
            let _ = p.asn();
        }
    }
}

//! Counterfactual shocks: hand-authored world mutations for the
//! what-if engine in `govhost-scenario`.
//!
//! A shock is a [`tick`](crate::tick)-shaped mutation applied outside
//! the yearly evolution loop: it rewrites DNS zones (and, where the
//! mutation has a real-world operator, ground truth) and reports the
//! countries whose hosting surface changed, so
//! `GovDataset::rebuild_incremental` in govhost-core recomputes only
//! those. Shocks obey the tick determinism laws — fixed iteration
//! orders, randomness only through seed-keyed hashes — with one
//! deliberate exception: **a provider outage breaks the "resolution
//! stays total" law.** Going dark is the point; darkened hostnames stop
//! resolving and surface in the rebuilt dataset as unresolved host
//! records (the per-country *dark fraction*).
//!
//! The outage walks two dependency edges:
//!
//! * **tenancy** — the host is served from the failed provider's
//!   network (ground truth ASN, which also covers CDN-fronted hosts
//!   whose CNAME chain ends in the provider's zone), and
//! * **shared NS** — the host's authoritative NS set lives under the
//!   failed provider's namespace ([`Resolver::resolve_ns`]), the
//!   shared-nameserver single point of failure of the
//!   authoritative-DNS-resilience literature. A host dark *only*
//!   through this edge is "NS-only exposure": its web servers are fine,
//!   but nobody can find them.

use crate::providers::GlobalProvider;
use crate::tick::{countries_with_hosts, domestic_server, hosts_sorted, repoint};
use crate::world::World;
use govhost_dns::{AuthoritativeServer, DnsName, RData, Resolver, Zone};
use govhost_netsim::det;
use govhost_types::{CountryCode, Hostname};
use std::collections::BTreeSet;

/// The synthetic "year" a shock stamps into rewritten SOA serials —
/// far past any plausible tick year, so shocked zones are recognizable
/// and never collide with evolution serials.
pub const SHOCK_YEAR: u32 = 9_000;

/// Share of hostnames a vantage shock re-points (per vantage key).
const VANTAGE_SHIFT_FRACTION: f64 = 0.15;

/// Why a hostname went dark in a provider outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DarkCause {
    /// Served from the failed provider's network.
    Tenancy,
    /// Hosted elsewhere, but the entire authoritative NS set resolves
    /// through the failed provider — the shared-NS cascade.
    NsOnly,
}

impl DarkCause {
    /// Stable lowercase label (`"tenancy"` / `"ns-only"`).
    pub fn label(&self) -> &'static str {
        match self {
            DarkCause::Tenancy => "tenancy",
            DarkCause::NsOnly => "ns-only",
        }
    }
}

/// One hostname taken down by an outage shock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DarkHost {
    /// The darkened hostname.
    pub host: Hostname,
    /// The government it belongs to.
    pub country: CountryCode,
    /// Which dependency edge killed it.
    pub cause: DarkCause,
}

/// What one shock did to the world.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShockReport {
    /// Countries whose hosting surface changed and must be rebuilt.
    pub dirty: BTreeSet<CountryCode>,
    /// Human-readable event log, one line per mutation, in hostname
    /// order.
    pub events: Vec<String>,
    /// Hosts an outage darkened (empty for non-outage shocks).
    pub darkened: Vec<DarkHost>,
}

/// Take a global provider down: every hosting tenancy on its network
/// and every domain whose authoritative NS set resolves through it
/// stops resolving.
///
/// Each darkened hostname's zone is replaced with an SOA-only shell (no
/// `A`, no `CNAME` — queries answer NoData, which the measurement
/// pipeline records as an unresolved host), and the provider's own zone
/// is emptied so its CDN edge names and managed-DNS server names
/// disappear with it.
pub fn provider_outage(world: &mut World, provider: &GlobalProvider) -> ShockReport {
    let apex = provider.zone_apex();
    let mut report = ShockReport::default();
    for host in hosts_sorted(world) {
        let Some(truth) = world.truth.hosts.get(&host) else { continue };
        let country = truth.country;
        let tenancy = truth.asn.value() == provider.asn;
        let name = DnsName::from(&host);
        let ns_dependent = match world.resolver.resolve_ns(&name) {
            Ok(ns) => ns.iter().all(|target| target.is_under(&apex)),
            Err(_) => false,
        };
        if !tenancy && !ns_dependent {
            continue;
        }
        let cause = if tenancy { DarkCause::Tenancy } else { DarkCause::NsOnly };
        blackhole(&mut world.resolver, &name);
        report.dirty.insert(country);
        report.events.push(format!(
            "outage: AS{} {country} {host} dark ({})",
            provider.asn,
            cause.label()
        ));
        report.darkened.push(DarkHost { host, country, cause });
    }
    // The provider's own zone goes with it: edge names and managed-DNS
    // server names under the apex stop answering.
    world.resolver.add_server(AuthoritativeServer::new(Zone::new(apex)));
    report
}

/// Replace a hostname's zone with an SOA-only shell: the name still has
/// a zone (so queries reach an authority) but answers no addresses.
fn blackhole(resolver: &mut Resolver, apex: &DnsName) {
    let mut zone = Zone::new(apex.clone());
    if let (Ok(mname), Ok(rname)) = (apex.child("ns1"), apex.child("hostmaster")) {
        zone.add(
            apex.clone(),
            RData::Soa { mname, rname, serial: 2_024_110_401 + SHOCK_YEAR },
        );
    }
    resolver.add_server(AuthoritativeServer::new(zone));
}

/// Forced data localization: re-home every offshore-located hosting
/// tenancy of `target` (or of every studied country, when `None`) onto
/// the best in-country unicast server, preferring state-run
/// infrastructure — the [`DataLocalization`](crate::tick::DataLocalization)
/// tick without its yearly budget.
pub fn onshore(world: &mut World, target: Option<CountryCode>) -> ShockReport {
    let mut report = ShockReport::default();
    let countries: Vec<CountryCode> = countries_with_hosts(world)
        .into_iter()
        .filter(|cc| target.is_none_or(|t| t == *cc))
        .collect();
    for country in countries {
        let movers: Vec<Hostname> = hosts_sorted(world)
            .into_iter()
            .filter(|h| {
                world
                    .truth
                    .hosts
                    .get(h)
                    .is_some_and(|t| t.country == country && t.location != country)
            })
            .collect();
        for host in movers {
            let Some(ip) = domestic_server(world, country) else { continue };
            let asn = world.registry.server_by_ip(ip).map(|s| s.asn);
            if repoint(world, &host, ip, SHOCK_YEAR).is_some() {
                if let Some(asn) = asn {
                    report.dirty.insert(country);
                    report.events.push(format!("onshore: {country} {host} -> {asn}"));
                }
            }
        }
    }
    report
}

/// Vantage disagreement: re-point a deterministic, vantage-key-selected
/// share of hostnames onto a *different* server of the same operating
/// AS, so geolocation and resolution verdicts shift exactly where a
/// measurement from another vantage would disagree. The selection is a
/// pure hash of `(world seed, key, hostname)` — two runs with the same
/// key perturb the same hosts.
pub fn vantage_shift(world: &mut World, key: &str) -> ShockReport {
    let mut report = ShockReport::default();
    let seed = world.params.seed;
    for host in hosts_sorted(world) {
        let gate = det::unit(
            seed,
            &[det::hash_str("vantage-shock"), det::hash_str(key), det::hash_str(host.as_str())],
        );
        if gate >= VANTAGE_SHIFT_FRACTION {
            continue;
        }
        let Some(truth) = world.truth.hosts.get(&host) else { continue };
        let (country, asn, anycast) = (truth.country, truth.asn, truth.anycast);
        let current = world
            .resolver
            .resolve(&DnsName::from(&host), Some(country))
            .ok()
            .and_then(|ans| ans.addresses.first().copied());
        // A different address of the same AS and fabric (anycast hosts
        // stay anycast, unicast stays unicast), in registry order.
        let alternative = world
            .registry
            .servers()
            .iter()
            .filter(|s| s.asn == asn && s.anycast == anycast)
            .map(|s| s.ip)
            .find(|ip| Some(*ip) != current);
        let Some(ip) = alternative else { continue };
        if repoint(world, &host, ip, SHOCK_YEAR).is_some() {
            report.dirty.insert(country);
            report.events.push(format!("vantage[{key}]: {country} {host} -> {ip}"));
        }
    }
    report
}

impl ShockReport {
    /// Fold another shock's report into this one, preserving event
    /// order (shocks apply sequentially).
    pub fn absorb(&mut self, other: ShockReport) {
        self.dirty.extend(other.dirty);
        self.events.extend(other.events);
        self.darkened.extend(other.darkened);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GenParams;
    use crate::providers::GLOBAL_PROVIDERS;

    fn tiny_world() -> World {
        World::generate(&GenParams::tiny())
    }

    #[test]
    fn outage_darkens_tenancies_and_ns_dependents() {
        let mut world = tiny_world();
        // Find a provider with any exposure in the tiny world.
        let provider = GLOBAL_PROVIDERS
            .iter()
            .find(|p| {
                world.truth.hosts.values().any(|t| t.asn.value() == p.asn)
            })
            .expect("tiny worlds use global providers");
        let report = provider_outage(&mut world, provider);
        assert!(!report.darkened.is_empty());
        for dark in &report.darkened {
            let answer = world.resolver.resolve(&DnsName::from(&dark.host), Some(dark.country));
            assert!(answer.is_err(), "{} still resolves after the outage", dark.host);
            assert!(report.dirty.contains(&dark.country));
        }
        // Clean-country hosts keep resolving.
        for (host, truth) in &world.truth.hosts {
            if report.dirty.contains(&truth.country) {
                continue;
            }
            assert!(
                world.resolver.resolve(&DnsName::from(host), Some(truth.country)).is_ok(),
                "{host} in a clean country stopped resolving"
            );
        }
    }

    #[test]
    fn some_world_has_ns_only_exposure() {
        // The managed-DNS operators must create shared-NS cascades:
        // at least one (operator, host) pair where the host is hosted
        // elsewhere but its NS set is the operator's.
        let world = tiny_world();
        let ns_only = GLOBAL_PROVIDERS.iter().any(|p| {
            let apex = p.zone_apex();
            world.truth.hosts.iter().any(|(host, truth)| {
                truth.asn.value() != p.asn
                    && world
                        .resolver
                        .resolve_ns(&DnsName::from(host))
                        .map(|ns| ns.iter().all(|t| t.is_under(&apex)))
                        .unwrap_or(false)
            })
        });
        assert!(ns_only, "no NS-only exposure anywhere — managed DNS is not wired");
    }

    #[test]
    fn onshore_moves_offshore_hosts_home() {
        let mut world = tiny_world();
        let offshore_before = world
            .truth
            .hosts
            .values()
            .filter(|t| t.location != t.country)
            .count();
        assert!(offshore_before > 0, "tiny worlds host offshore");
        let report = onshore(&mut world, None);
        let offshore_after = world
            .truth
            .hosts
            .values()
            .filter(|t| t.location != t.country)
            .count();
        assert!(offshore_after < offshore_before, "onshore must repatriate hosts");
        assert_eq!(report.events.len(), offshore_before - offshore_after);
        // Everything still resolves — onshore re-points, never darkens.
        for (host, truth) in &world.truth.hosts {
            assert!(
                world.resolver.resolve(&DnsName::from(host), Some(truth.country)).is_ok(),
                "{host} stopped resolving after onshore"
            );
        }
    }

    #[test]
    fn vantage_shift_is_keyed_and_deterministic() {
        let mut a = tiny_world();
        let mut b = tiny_world();
        let ra = vantage_shift(&mut a, "probe-7");
        let rb = vantage_shift(&mut b, "probe-7");
        assert_eq!(ra, rb, "same key, same shift");
        let mut c = tiny_world();
        let rc = vantage_shift(&mut c, "probe-8");
        assert_ne!(ra.events, rc.events, "different keys select different hosts");
        assert!(!ra.events.is_empty(), "a vantage shock moves something");
    }
}

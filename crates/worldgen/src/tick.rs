//! Deterministic yearly evolution of a generated world.
//!
//! The paper is a single 2024 snapshot; this module lets a [`World`]
//! advance through simulated years so the longitudinal questions (how do
//! concentration, HHI and provider footprints drift as agencies migrate?)
//! become measurable. Each concern is a [`TickSystem`] — provider
//! entry/exit, agency migration to hyperscalers, data-localization policy
//! adoption, anycast footprint growth — and a year advances by running
//! every system once, in a fixed order, each with its own seeded
//! [`DetRng`] stream.
//!
//! # Determinism laws
//!
//! * **Same-seed timeline identity.** A system's random stream is keyed
//!   only by `(world seed, system name, year)`, and all world scans run in
//!   fixed orders (hostnames sorted, countries in [`COUNTRIES`] order,
//!   providers in [`GLOBAL_PROVIDERS`] order, servers in registry order).
//!   Two worlds generated from the same [`GenParams`](crate::GenParams)
//!   therefore produce bit-identical timelines, independent of thread
//!   count — ticking itself is single-threaded by construction.
//! * **Bounded blast radius.** Ticks only re-point DNS (replacing a
//!   hostname's authoritative zone) and update ground truth. They never
//!   mutate the AS registry, the web corpus, the search index or any
//!   geolocation surface, so the measurement pipeline's view of a country
//!   changes **iff** one of that country's hostnames was re-pointed. The
//!   set of such countries is the tick's *dirty set*, which
//!   `GovDataset::rebuild_incremental` in govhost-core uses to recompute
//!   only the affected per-country partials.
//! * **Resolution stays total.** A re-pointed hostname always receives a
//!   fresh zone with a valid `A` record, so ticks never introduce
//!   resolution failures that did not exist at generation time.

use crate::countries::COUNTRIES;
use crate::providers::{provider_by_asn, GlobalProvider, GLOBAL_PROVIDERS};
use crate::world::World;
use govhost_det::DetRng;
use govhost_dns::{AuthoritativeServer, DnsName, RData, Zone};
use govhost_netsim::det;
use govhost_types::{Asn, CountryCode, Hostname, ProviderCategory};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Environment variable selecting which tick systems run, as a
/// comma-separated list of system names (see [`default_systems`]).
/// Unset or empty means all of them.
pub const TICKS_ENV: &str = "GOVHOST_TICKS";

/// What one system did to the world in one year.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TickOutcome {
    /// Countries whose hosting surface changed and must be rebuilt.
    pub dirty: BTreeSet<CountryCode>,
    /// Human-readable event log, one line per mutation.
    pub events: Vec<String>,
}

impl TickOutcome {
    fn record(&mut self, system: &str, host: &Hostname, country: CountryCode, asn: Asn) {
        self.dirty.insert(country);
        self.events.push(format!("{system}: {country} {host} -> {asn}"));
    }
}

/// The combined result of running every system for one year.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickReport {
    /// The simulated year that was applied (1-based; the generated world
    /// is year 0).
    pub year: u32,
    /// Union of every system's dirty set.
    pub dirty: BTreeSet<CountryCode>,
    /// Concatenated event logs, in system order.
    pub events: Vec<String>,
}

/// One evolutionary concern, advanced a year at a time.
///
/// `apply` must be a pure function of `(world, year, rng)`: no ambient
/// randomness, no iteration over hash maps in storage order. See the
/// module docs for the determinism laws implementations must uphold.
pub trait TickSystem {
    /// Stable identifier; keys the system's random stream and the
    /// [`TICKS_ENV`] filter.
    fn name(&self) -> &'static str;
    /// Advance the world by one year for this concern.
    fn apply(&self, world: &mut World, year: u32, rng: &mut DetRng) -> TickOutcome;
}

/// Advance `world` by one simulated year using the given systems.
///
/// Each system gets an independent [`DetRng`] keyed by
/// `(seed, system name, year)`, so inserting or removing a system never
/// perturbs the streams of the others.
pub fn run_year(world: &mut World, year: u32, systems: &[Box<dyn TickSystem>]) -> TickReport {
    let mut report =
        TickReport { year, dirty: BTreeSet::new(), events: Vec::new() };
    for system in systems {
        let key = det::mix(world.params.seed, &[det::hash_str(system.name()), year as u64]);
        let mut rng = DetRng::new(key);
        let outcome = system.apply(world, year, &mut rng);
        report.dirty.extend(outcome.dirty);
        report.events.extend(outcome.events);
    }
    report
}

/// The standard four systems, in their canonical order.
pub fn default_systems() -> Vec<Box<dyn TickSystem>> {
    vec![
        Box::new(ProviderChurn),
        Box::new(AgencyMigration),
        Box::new(DataLocalization),
        Box::new(AnycastGrowth),
    ]
}

/// A tick-roster spec named a system that does not exist.
///
/// Raised by [`systems_from_spec`] (and therefore [`systems_from_env`])
/// so a typo in `GOVHOST_TICKS` or a scenario file fails loudly instead
/// of silently running a smaller roster than the one asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTickError {
    /// The unrecognized token, verbatim.
    pub token: String,
    /// Every valid system name, in canonical order.
    pub roster: Vec<&'static str>,
}

impl std::fmt::Display for UnknownTickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown tick system {:?} (valid systems: {})",
            self.token,
            self.roster.join(", ")
        )
    }
}

impl std::error::Error for UnknownTickError {}

/// [`default_systems`] filtered by a comma-separated allow-list of
/// system names. An empty or all-whitespace spec selects every system;
/// a token naming no system is an [`UnknownTickError`] carrying the bad
/// token and the valid roster.
pub fn systems_from_spec(spec: &str) -> Result<Vec<Box<dyn TickSystem>>, UnknownTickError> {
    let all = default_systems();
    let wanted: Vec<&str> =
        spec.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    if wanted.is_empty() {
        return Ok(all);
    }
    let roster: Vec<&'static str> = all.iter().map(|s| s.name()).collect();
    if let Some(bad) = wanted.iter().find(|w| !roster.iter().any(|r| r == *w)) {
        return Err(UnknownTickError { token: (*bad).to_string(), roster });
    }
    Ok(all.into_iter().filter(|s| wanted.contains(&s.name())).collect())
}

/// [`default_systems`] filtered by the [`TICKS_ENV`] variable via
/// [`systems_from_spec`]. Unset means all systems; an unknown name in
/// the variable is a typed error, never a silently smaller roster.
pub fn systems_from_env() -> Result<Vec<Box<dyn TickSystem>>, UnknownTickError> {
    match std::env::var(TICKS_ENV) {
        Ok(spec) => systems_from_spec(&spec),
        Err(_) => Ok(default_systems()),
    }
}

/// Government hostnames in a stable order (sorted by name), the only
/// iteration order tick systems may use over the truth table.
pub(crate) fn hosts_sorted(world: &World) -> Vec<Hostname> {
    let mut names: Vec<Hostname> = world.truth.hosts.keys().cloned().collect();
    names.sort_by(|a, b| a.as_str().cmp(b.as_str()));
    names
}

/// Studied countries that have at least one government hostname, in
/// [`COUNTRIES`] order.
pub(crate) fn countries_with_hosts(world: &World) -> Vec<CountryCode> {
    let present: BTreeSet<CountryCode> =
        world.truth.hosts.values().map(|t| t.country).collect();
    COUNTRIES.iter().map(|row| row.cc()).filter(|cc| present.contains(cc)).collect()
}

/// The first server of `asn` in registry order, preferring one with a
/// site in `prefer`; `want_anycast` filters on the anycast flag when set.
pub(crate) fn server_of_asn(
    world: &World,
    asn: u32,
    prefer: CountryCode,
    want_anycast: Option<bool>,
) -> Option<Ipv4Addr> {
    let mut fallback = None;
    for server in world.registry.servers() {
        if server.asn.value() != asn {
            continue;
        }
        if let Some(flag) = want_anycast {
            if server.anycast != flag {
                continue;
            }
        }
        if server.sites.iter().any(|site| site.country == prefer) {
            return Some(server.ip);
        }
        if fallback.is_none() {
            fallback = Some(server.ip);
        }
    }
    fallback
}

/// A unicast server physically inside `country`, preferring one run by a
/// state operator (government or SOE AS).
pub(crate) fn domestic_server(world: &World, country: CountryCode) -> Option<Ipv4Addr> {
    let mut fallback = None;
    for server in world.registry.servers() {
        if server.anycast || !server.sites.iter().any(|site| site.country == country) {
            continue;
        }
        let state = world
            .registry
            .as_record(server.asn)
            .map(|rec| rec.kind.is_state())
            .unwrap_or(false);
        if state {
            return Some(server.ip);
        }
        if fallback.is_none() {
            fallback = Some(server.ip);
        }
    }
    fallback
}

/// True provider category of a host in `gov` now served by `asn`,
/// mirroring the generator's classification: state operators are
/// Govt&SOE, the Fig. 10 providers are global, and everything else is
/// local or regional by registration country.
fn category_for(world: &World, asn: Asn, gov: CountryCode) -> ProviderCategory {
    match world.registry.as_record(asn) {
        Some(rec) if rec.kind.is_state() => ProviderCategory::GovtSoe,
        _ if provider_by_asn(asn.value()).is_some() => ProviderCategory::ThirdPartyGlobal,
        Some(rec) if rec.registered_in == gov => ProviderCategory::ThirdPartyLocal,
        _ => ProviderCategory::ThirdPartyRegional,
    }
}

/// Re-point `host` at the server holding `ip`: replace its authoritative
/// zone with a fresh one answering an `A` record, and update ground truth
/// (ASN, anycast flag, physical location, true category). Returns the
/// owning country on success.
pub(crate) fn repoint(
    world: &mut World,
    host: &Hostname,
    ip: Ipv4Addr,
    year: u32,
) -> Option<CountryCode> {
    let gov = world.truth.hosts.get(host)?.country;
    let (asn, anycast, location) = {
        let server = world.registry.server_by_ip(ip)?;
        let domestic = server.sites.iter().find(|site| site.country == gov);
        let location = domestic.or_else(|| server.sites.first())?.country;
        (server.asn, server.anycast, location)
    };
    let apex = DnsName::from(host);
    let mut zone = Zone::new(apex.clone());
    if let (Ok(mname), Ok(rname)) = (apex.child("ns1"), apex.child("hostmaster")) {
        // Serial advances with the simulated year, as a real operator's
        // zone would on migration day.
        zone.add(
            apex.clone(),
            RData::Soa { mname: mname.clone(), rname, serial: 2_024_110_401 + year },
        );
        zone.add(apex.clone(), RData::Ns(mname));
    }
    zone.add(apex.clone(), RData::A(ip));
    world.resolver.add_server(AuthoritativeServer::new(zone));
    let category = category_for(world, asn, gov);
    let truth = world.truth.hosts.get_mut(host)?;
    truth.asn = asn;
    truth.anycast = anycast;
    truth.location = location;
    truth.category = category;
    Some(gov)
}

/// Countries (in [`COUNTRIES`] order) with at least one host on `asn`.
fn users_of(world: &World, asn: u32) -> Vec<CountryCode> {
    let using: BTreeSet<CountryCode> = world
        .truth
        .hosts
        .values()
        .filter(|t| t.asn.value() == asn)
        .map(|t| t.country)
        .collect();
    COUNTRIES.iter().map(|row| row.cc()).filter(|cc| using.contains(cc)).collect()
}

/// Provider entry and exit (Fig. 10's footprint churn).
///
/// Every year one global provider *enters* a new market: the provider is
/// cycled from [`GLOBAL_PROVIDERS`] and one government not yet using it
/// moves a domestic host onto it. Every fourth year one provider from the
/// long tail *exits* a market: a government using it re-homes those hosts
/// onto domestic state infrastructure.
pub struct ProviderChurn;

impl TickSystem for ProviderChurn {
    fn name(&self) -> &'static str {
        "provider-churn"
    }

    fn apply(&self, world: &mut World, year: u32, rng: &mut DetRng) -> TickOutcome {
        let mut out = TickOutcome::default();
        let entrant: &GlobalProvider =
            &GLOBAL_PROVIDERS[(year as usize - 1) % GLOBAL_PROVIDERS.len()];
        let users = users_of(world, entrant.asn);
        let candidates: Vec<CountryCode> = countries_with_hosts(world)
            .into_iter()
            .filter(|cc| !users.contains(cc))
            .collect();
        if !candidates.is_empty() {
            let country = candidates[rng.index(candidates.len())];
            let hosts = hosts_sorted(world);
            let mover = hosts.iter().find(|h| {
                world.truth.hosts.get(h).is_some_and(|t| {
                    t.country == country
                        && matches!(
                            t.category,
                            ProviderCategory::GovtSoe | ProviderCategory::ThirdPartyLocal
                        )
                })
            });
            if let Some(host) = mover {
                let want_anycast = if entrant.anycast { Some(true) } else { None };
                if let Some(ip) = server_of_asn(world, entrant.asn, country, want_anycast) {
                    if repoint(world, host, ip, year).is_some() {
                        out.record(self.name(), host, country, entrant.asn());
                    }
                }
            }
        }
        if year.is_multiple_of(4) {
            let tail_index =
                GLOBAL_PROVIDERS.len() - 1 - ((year as usize / 4) % GLOBAL_PROVIDERS.len());
            let leaver = &GLOBAL_PROVIDERS[tail_index];
            let markets = users_of(world, leaver.asn);
            if !markets.is_empty() {
                let country = markets[rng.index(markets.len())];
                let movers: Vec<Hostname> = hosts_sorted(world)
                    .into_iter()
                    .filter(|h| {
                        world.truth.hosts.get(h).is_some_and(|t| {
                            t.country == country && t.asn.value() == leaver.asn
                        })
                    })
                    .take(2)
                    .collect();
                for host in movers {
                    if let Some(ip) = domestic_server(world, country) {
                        let asn = world.registry.server_by_ip(ip).map(|s| s.asn);
                        if repoint(world, &host, ip, year).is_some() {
                            if let Some(asn) = asn {
                                out.record(self.name(), &host, country, asn);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Agency migration to hyperscalers (the §2 consolidation trend).
///
/// Each year roughly a quarter of the governments — chosen by a hash of
/// `(seed, "agency", year, country)`, so membership is stable under
/// replay — move up to two Govt&SOE hosts onto the most-used global
/// provider already serving that country (or Cloudflare when none does).
pub struct AgencyMigration;

impl TickSystem for AgencyMigration {
    fn name(&self) -> &'static str {
        "agency-migration"
    }

    fn apply(&self, world: &mut World, year: u32, _rng: &mut DetRng) -> TickOutcome {
        let mut out = TickOutcome::default();
        let seed = world.params.seed;
        for country in countries_with_hosts(world) {
            let gate = det::unit(
                seed,
                &[det::hash_str("agency"), year as u64, det::hash_str(country.as_str())],
            );
            if gate >= 0.25 {
                continue;
            }
            // Destination: the first (most-footprint) Fig. 10 provider
            // already serving this country, else the headliner.
            let present = GLOBAL_PROVIDERS
                .iter()
                .find(|p| users_of(world, p.asn).contains(&country))
                .unwrap_or(&GLOBAL_PROVIDERS[0]);
            let movers: Vec<Hostname> = hosts_sorted(world)
                .into_iter()
                .filter(|h| {
                    world.truth.hosts.get(h).is_some_and(|t| {
                        t.country == country && t.category == ProviderCategory::GovtSoe
                    })
                })
                .take(2)
                .collect();
            let want_anycast = if present.anycast { Some(true) } else { None };
            for host in movers {
                if let Some(ip) = server_of_asn(world, present.asn, country, want_anycast) {
                    if repoint(world, &host, ip, year).is_some() {
                        out.record(self.name(), &host, country, present.asn());
                    }
                }
            }
        }
        out
    }
}

/// Data-localization policy adoption (§6's sovereignty lens).
///
/// Every third year one government with foreign-located hosts passes a
/// localization mandate: up to three of those hosts are re-homed onto
/// unicast servers physically inside the country, preferring state-run
/// infrastructure.
pub struct DataLocalization;

impl TickSystem for DataLocalization {
    fn name(&self) -> &'static str {
        "data-localization"
    }

    fn apply(&self, world: &mut World, year: u32, rng: &mut DetRng) -> TickOutcome {
        let mut out = TickOutcome::default();
        if !year.is_multiple_of(3) {
            return out;
        }
        let offshore: Vec<CountryCode> = countries_with_hosts(world)
            .into_iter()
            .filter(|cc| {
                world.truth.hosts.values().any(|t| t.country == *cc && t.location != *cc)
            })
            .collect();
        if offshore.is_empty() {
            return out;
        }
        let country = offshore[rng.index(offshore.len())];
        let movers: Vec<Hostname> = hosts_sorted(world)
            .into_iter()
            .filter(|h| {
                world
                    .truth
                    .hosts
                    .get(h)
                    .is_some_and(|t| t.country == country && t.location != country)
            })
            .take(3)
            .collect();
        for host in movers {
            if let Some(ip) = domestic_server(world, country) {
                let asn = world.registry.server_by_ip(ip).map(|s| s.asn);
                if repoint(world, &host, ip, year).is_some() {
                    if let Some(asn) = asn {
                        out.record(self.name(), &host, country, asn);
                    }
                }
            }
        }
        out
    }
}

/// Anycast footprint growth (§5's CDN-fronting trend).
///
/// Each year one government whose hosts sit on unicast addresses of an
/// anycast-capable provider moves up to two of them onto that provider's
/// anycast fabric, preferring an address with a domestic site.
pub struct AnycastGrowth;

impl TickSystem for AnycastGrowth {
    fn name(&self) -> &'static str {
        "anycast-growth"
    }

    fn apply(&self, world: &mut World, year: u32, rng: &mut DetRng) -> TickOutcome {
        let mut out = TickOutcome::default();
        let eligible = |t: &crate::truth::HostTruth| {
            !t.anycast
                && provider_by_asn(t.asn.value()).map(|p| p.anycast).unwrap_or(false)
        };
        let candidates: Vec<CountryCode> = countries_with_hosts(world)
            .into_iter()
            .filter(|cc| world.truth.hosts.values().any(|t| t.country == *cc && eligible(t)))
            .collect();
        if candidates.is_empty() {
            return out;
        }
        let country = candidates[rng.index(candidates.len())];
        let movers: Vec<(Hostname, u32)> = hosts_sorted(world)
            .into_iter()
            .filter_map(|h| {
                let t = world.truth.hosts.get(&h)?;
                (t.country == country && eligible(t)).then(|| (h, t.asn.value()))
            })
            .take(2)
            .collect();
        for (host, asn) in movers {
            if let Some(ip) = server_of_asn(world, asn, country, Some(true)) {
                if repoint(world, &host, ip, year).is_some() {
                    out.record(self.name(), &host, country, Asn::from(asn));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GenParams;

    fn tiny_world() -> World {
        World::generate(&GenParams::tiny())
    }

    #[test]
    fn same_seed_same_timeline() {
        let mut a = tiny_world();
        let mut b = tiny_world();
        let systems = default_systems();
        for year in 1..=5 {
            let ra = run_year(&mut a, year, &systems);
            let rb = run_year(&mut b, year, &systems);
            assert_eq!(ra, rb, "year {year} diverged");
        }
        // The truths evolved identically too.
        let mut ka: Vec<_> = a.truth.hosts.keys().map(|h| h.as_str().to_string()).collect();
        let mut kb: Vec<_> = b.truth.hosts.keys().map(|h| h.as_str().to_string()).collect();
        ka.sort();
        kb.sort();
        assert_eq!(ka, kb);
        for k in &ka {
            let h: Hostname = k.parse().unwrap();
            let ta = a.truth.hosts.get(&h).unwrap();
            let tb = b.truth.hosts.get(&h).unwrap();
            assert_eq!((ta.asn, ta.anycast, ta.location, ta.category),
                       (tb.asn, tb.anycast, tb.location, tb.category));
        }
    }

    #[test]
    fn ticks_mark_exactly_the_repointed_countries() {
        let mut world = tiny_world();
        let before = world.truth.clone();
        let report = run_year(&mut world, 1, &default_systems());
        let mut changed = BTreeSet::new();
        for (host, truth) in &world.truth.hosts {
            let old = before.hosts.get(host).expect("ticks never add hosts");
            if old.asn != truth.asn
                || old.anycast != truth.anycast
                || old.location != truth.location
                || old.category != truth.category
            {
                changed.insert(truth.country);
            }
        }
        assert_eq!(changed, report.dirty);
    }

    #[test]
    fn repointed_hosts_still_resolve() {
        let mut world = tiny_world();
        for year in 1..=3 {
            run_year(&mut world, year, &default_systems());
        }
        for host in hosts_sorted(&world) {
            let gov = world.truth.hosts[&host].country;
            let answer = world.resolver.resolve(&DnsName::from(&host), Some(gov));
            assert!(answer.is_ok(), "{host} stopped resolving after ticks");
        }
    }

    #[test]
    fn env_filter_selects_by_name() {
        // Avoid mutating the process environment (other tests run in
        // parallel); exercise the parsing path through systems_from_spec.
        let names: Vec<&str> = default_systems().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["provider-churn", "agency-migration", "data-localization", "anycast-growth"]
        );
        let picked = systems_from_spec(" agency-migration , anycast-growth ").unwrap();
        let picked: Vec<&str> = picked.iter().map(|s| s.name()).collect();
        assert_eq!(picked, ["agency-migration", "anycast-growth"]);
        let all = systems_from_spec("  ").unwrap();
        assert_eq!(all.len(), default_systems().len());
    }

    #[test]
    fn unknown_tick_names_are_typed_errors_naming_token_and_roster() {
        let err = match systems_from_spec("provider-churn,provider-chrun") {
            Err(err) => err,
            Ok(_) => panic!("a typo'd system name must not parse"),
        };
        assert_eq!(err.token, "provider-chrun");
        assert_eq!(
            err.roster,
            ["provider-churn", "agency-migration", "data-localization", "anycast-growth"]
        );
        let msg = err.to_string();
        assert!(msg.contains("provider-chrun"), "names the bad token: {msg}");
        assert!(msg.contains("data-localization"), "names the valid roster: {msg}");
        // Case matters — names are stable identifiers, not fuzzy matches.
        assert!(systems_from_spec("Provider-Churn").is_err());
    }

    #[test]
    fn ticks_never_touch_clean_countries_resolution() {
        let mut world = tiny_world();
        let systems = default_systems();
        // Snapshot every host's resolved address, tick, and check that
        // hosts in clean countries answer exactly as before.
        let before: Vec<(Hostname, CountryCode, Option<Ipv4Addr>)> = hosts_sorted(&world)
            .into_iter()
            .map(|h| {
                let gov = world.truth.hosts[&h].country;
                let ip = world
                    .resolver
                    .resolve(&DnsName::from(&h), Some(gov))
                    .ok()
                    .and_then(|ans| ans.addresses.first().copied());
                (h, gov, ip)
            })
            .collect();
        let report = run_year(&mut world, 1, &systems);
        for (host, gov, ip) in before {
            if report.dirty.contains(&gov) {
                continue;
            }
            let now = world
                .resolver
                .resolve(&DnsName::from(&host), Some(gov))
                .ok()
                .and_then(|ans| ans.addresses.first().copied());
            assert_eq!(ip, now, "{host} changed despite {gov} being clean");
        }
    }
}

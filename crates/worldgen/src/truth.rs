//! Ground truth about the generated world.
//!
//! The measurement pipeline must never read this — it exists so tests can
//! compare what the pipeline *recovered* against what the generator
//! *built*, and so calibration tests can check the world matches the
//! paper's numbers before the pipeline even runs.

use govhost_types::{Asn, CountryCode, Hostname, ProviderCategory};
use std::collections::HashMap;

/// Ground truth for one government hostname.
#[derive(Debug, Clone)]
pub struct HostTruth {
    /// The government (country) this hostname belongs to.
    pub country: CountryCode,
    /// True provider category.
    pub category: ProviderCategory,
    /// Operating AS.
    pub asn: Asn,
    /// Country where the serving infrastructure physically sits (for
    /// anycast: whether a domestic site exists is what matters; this field
    /// holds the primary/domestic site country).
    pub location: CountryCode,
    /// Whether served from an anycast address.
    pub anycast: bool,
    /// Identification route the generator *intended*: true if the
    /// hostname carries a gov-TLD token, false if it is only identifiable
    /// by domain matching or SANs.
    pub gov_tld: bool,
    /// Whether the hostname is only reachable through a landing-page SAN
    /// (the 0.3% tail of §4.2).
    pub san_only: bool,
}

/// Everything the generator knows that the pipeline must rediscover.
#[derive(Debug, Default, Clone)]
pub struct GroundTruth {
    /// Per-hostname truths.
    pub hosts: HashMap<Hostname, HostTruth>,
    /// Planned URL count per country (scaled Table 8).
    pub planned_urls: HashMap<CountryCode, u64>,
    /// Planned landing-page count per country.
    pub planned_landing: HashMap<CountryCode, u32>,
    /// Which countries each global provider was assigned to serve — the
    /// Fig. 10 footprint invariant (usage converges to this at full
    /// scale).
    pub provider_assignments: HashMap<Asn, Vec<CountryCode>>,
}

impl GroundTruth {
    /// Truth for one hostname.
    pub fn host(&self, h: &Hostname) -> Option<&HostTruth> {
        self.hosts.get(h)
    }

    /// Count of hostnames whose true category matches.
    pub fn count_category(&self, country: CountryCode, category: ProviderCategory) -> usize {
        self.hosts
            .values()
            .filter(|t| t.country == country && t.category == category)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govhost_types::cc;

    #[test]
    fn lookup_and_counting() {
        let mut truth = GroundTruth::default();
        let h: Hostname = "agency1.gov.xx".parse().unwrap();
        truth.hosts.insert(
            h.clone(),
            HostTruth {
                country: cc!("AR"),
                category: ProviderCategory::GovtSoe,
                asn: Asn(64500),
                location: cc!("AR"),
                anycast: false,
                gov_tld: true,
                san_only: false,
            },
        );
        assert!(truth.host(&h).is_some());
        assert_eq!(truth.count_category(cc!("AR"), ProviderCategory::GovtSoe), 1);
        assert_eq!(truth.count_category(cc!("AR"), ProviderCategory::ThirdPartyGlobal), 0);
        assert_eq!(truth.count_category(cc!("BR"), ProviderCategory::GovtSoe), 0);
    }
}

//! The assembled world: every substrate surface the measurement pipeline
//! talks to, in one struct.

use crate::countries::{CountryRow, COUNTRIES};
use crate::params::GenParams;
use crate::truth::GroundTruth;
use govhost_dns::Resolver;
use govhost_geoloc::{CountryThresholds, GeoDb, Hoiho, IpMapCache, MAnycastSnapshot};
use govhost_netsim::asdb::AsRegistry;
use govhost_netsim::latency::LatencyModel;
use govhost_netsim::peeringdb::PeeringDb;
use govhost_netsim::probes::ProbeFleet;
use govhost_netsim::search::SearchIndex;
use govhost_types::{CountryCode, Url};
use govhost_web::corpus::WebCorpus;
use govhost_web::vantage::{VantagePoint, VpnProvider};
use std::collections::HashMap;

/// A fully-generated simulated Internet.
///
/// Build one with [`World::generate`]; the fields are the observable
/// surfaces of §3's methodology (plus [`World::truth`], which is reserved
/// for tests and calibration).
#[derive(Debug)]
pub struct World {
    /// The parameters that built this world.
    pub params: GenParams,
    /// AS registry, prefix allocations and servers.
    pub registry: AsRegistry,
    /// PeeringDB snapshot.
    pub peeringdb: PeeringDb,
    /// The web-search index (last-resort classification evidence).
    pub search: SearchIndex,
    /// DNS: every authoritative zone, including the reverse zone.
    pub resolver: Resolver,
    /// All websites.
    pub corpus: WebCorpus,
    /// RIPE-Atlas-style probes.
    pub fleet: ProbeFleet,
    /// The latency model shared by all active measurements.
    pub latency: LatencyModel,
    /// IPInfo-like geolocation database (with injected errors).
    pub geodb: GeoDb,
    /// MAnycast2 snapshot.
    pub manycast: MAnycastSnapshot,
    /// Per-country latency thresholds.
    pub thresholds: CountryThresholds,
    /// HOIHO hint dictionary.
    pub hoiho: Hoiho,
    /// IPmap cache.
    pub ipmap: IpMapCache,
    /// §3.1 output: the landing URLs per studied country.
    pub landing_pages: HashMap<CountryCode, Vec<Url>>,
    /// CrUX-style topsite lists for the 14 comparison countries.
    pub topsites: HashMap<CountryCode, Vec<Url>>,
    /// Ground truth (tests only).
    pub truth: GroundTruth,
}

impl World {
    /// Static rows for the 61 studied countries.
    pub fn studied_countries(&self) -> &'static [CountryRow] {
        COUNTRIES
    }

    /// The VPN vantage point used for a country (Table 9).
    pub fn vantage(&self, country: CountryCode) -> VantagePoint {
        let provider = crate::countries::country(country)
            .map(|row| row.vpn)
            .unwrap_or(VpnProvider::Nord);
        VantagePoint::new(country, provider)
    }

    /// Landing URLs for one country (empty for countries without data,
    /// e.g. KR).
    pub fn landing(&self, country: CountryCode) -> &[Url] {
        self.landing_pages.get(&country).map_or(&[], Vec::as_slice)
    }
}

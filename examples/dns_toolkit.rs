//! The DNS substrate as a standalone library: build zones, resolve
//! through CNAME chains with geo-routed answers, and inspect the actual
//! wire bytes (with name compression) that flow between resolver and
//! authoritative server.
//!
//! ```text
//! cargo run --example dns_toolkit
//! ```

use govhost::dns::{
    reverse, AuthoritativeServer, DnsName, Message, RData, RecordType, Resolver, Zone,
};
use govhost::types::CountryCode;
use std::collections::HashMap;

fn n(s: &str) -> DnsName {
    s.parse().expect("valid name")
}

fn main() {
    // A government zone whose www is CDN-fronted.
    let mut gov = Zone::new(n("tramites.gob.mx"));
    gov.add(n("tramites.gob.mx"), RData::Soa {
        mname: n("ns1.tramites.gob.mx"),
        rname: n("hostmaster.tramites.gob.mx"),
        serial: 20241104,
    });
    gov.add(n("www.tramites.gob.mx"), RData::Cname(n("www-tramites.edge.cdnsim.net")));
    gov.add(n("static.tramites.gob.mx"), RData::A("11.7.0.10".parse().unwrap()));

    // The CDN zone answers differently depending on where you ask from.
    let mut cdn = Zone::new(n("cdnsim.net"));
    let mx: CountryCode = "MX".parse().unwrap();
    let mut by_country = HashMap::new();
    by_country.insert(mx, vec!["11.9.0.1".parse().unwrap()]);
    cdn.add_geo_a(
        n("www-tramites.edge.cdnsim.net"),
        vec!["11.9.9.9".parse().unwrap()], // default: the US PoP
        by_country,
    );

    // Reverse zone for the static server.
    let rev = reverse::build_reverse_zone([
        ("11.7.0.10".parse().unwrap(), "srv1.mexicocity.govnet.net"),
    ]);

    let mut resolver = Resolver::new();
    resolver.add_server(AuthoritativeServer::new(gov));
    resolver.add_server(AuthoritativeServer::new(cdn));
    resolver.add_server(AuthoritativeServer::new(rev));

    println!("=== geo-aware resolution through a CNAME chain ===");
    for vantage in [Some(mx), Some("DE".parse().unwrap()), None] {
        let ans = resolver.resolve(&n("www.tramites.gob.mx"), vantage).expect("resolves");
        println!(
            "  from {:?}: chain {} -> addresses {:?}",
            vantage.map(|c: CountryCode| c.to_string()),
            ans.chain.iter().map(ToString::to_string).collect::<Vec<_>>().join(" -> "),
            ans.addresses
        );
    }

    println!("\n=== PTR lookup ===");
    let ptr = resolver.resolve_ptr("11.7.0.10".parse().unwrap()).expect("has PTR");
    println!("  11.7.0.10 -> {ptr}");

    println!("\n=== wire format ===");
    let query = Message::query(0xBEEF, n("www.tramites.gob.mx"), RecordType::A);
    let bytes = query.encode().unwrap();
    println!("  query: {} bytes on the wire", bytes.len());
    print!("  hex  :");
    for (i, b) in bytes.iter().enumerate() {
        if i % 16 == 0 {
            print!("\n    ");
        }
        print!("{b:02x} ");
    }
    println!();
    let decoded = Message::decode(&bytes).expect("round-trips");
    assert_eq!(decoded, query);
    println!("  decodes back to the identical message ✓");

    // Compression at work: a response with many names under one suffix.
    let mut response = Message::response_to(&query, govhost::dns::Rcode::NoError);
    for i in 0..5 {
        response.answers.push(govhost::dns::Record::new(
            n(&format!("edge{i}.tramites.gob.mx")),
            60,
            RData::A(format!("11.9.0.{i}").parse().unwrap()),
        ));
    }
    let compressed = response.encode().unwrap().len();
    let naive: usize = 12
        + query.questions[0].name.wire_len() + 4
        + response.answers.iter().map(|r| r.name.wire_len() + 14).sum::<usize>();
    println!(
        "\n=== name compression ===\n  response: {compressed} bytes vs {naive} uncompressed ({}% saved)",
        (naive - compressed) * 100 / naive
    );
}

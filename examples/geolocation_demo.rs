//! Walk the §3.5 multistage geolocation pipeline on concrete servers,
//! showing what each stage contributes and what breaks when stages are
//! disabled (the paper's limitations discussion, §8).
//!
//! ```text
//! cargo run --release --example geolocation_demo
//! ```

use govhost::geoloc::pipeline::{GeoTask, GeolocationPipeline, PipelineConfig};
use govhost::prelude::*;

fn main() {
    let world = World::generate(&GenParams::tiny());
    let base = PipelineConfig::default();
    let pipeline = |config: PipelineConfig| GeolocationPipeline {
        registry: &world.registry,
        geodb: &world.geodb,
        anycast: &world.manycast,
        fleet: &world.fleet,
        model: &world.latency,
        thresholds: &world.thresholds,
        hoiho: &world.hoiho,
        ipmap: &world.ipmap,
        resolver: &world.resolver,
        config,
    };

    // Pick a few interesting servers: one responsive unicast, one
    // ICMP-dead with a PTR record, one anycast.
    let mut picks = Vec::new();
    for server in world.registry.servers() {
        let kind = if server.anycast {
            "anycast"
        } else if !server.icmp_responsive && server.ptr.is_some() {
            "icmp-dead with PTR"
        } else if server.icmp_responsive {
            "responsive unicast"
        } else {
            continue;
        };
        if picks.iter().any(|(_, k)| *k == kind) {
            continue;
        }
        picks.push((server.ip, kind));
        if picks.len() == 3 {
            break;
        }
    }

    println!("=== §3.5 multistage geolocation, stage by stage ===");
    let vantage: CountryCode = "AR".parse().expect("static code");
    for (ip, kind) in &picks {
        println!("\nserver {ip} ({kind}):");
        let task = GeoTask { ip: *ip, serving_country: vantage };
        let db = world.geodb.lookup(*ip);
        println!("  step 1 geo database : {:?}", db.map(|e| e.country.to_string()));
        println!("  step 2 anycast flag : {}", world.manycast.is_anycast(*ip));
        let verdict = pipeline(base).locate(task);
        println!(
            "  full pipeline       : location {:?}, method {:?}, excluded {}",
            verdict.location.map(|c| c.to_string()),
            verdict.method,
            verdict.excluded
        );
        // Ablation: no active probing.
        let mut no_ap = base;
        no_ap.use_active_probing = false;
        let v = pipeline(no_ap).locate(task);
        println!(
            "  without probing     : location {:?}, method {:?}, excluded {}",
            v.location.map(|c| c.to_string()),
            v.method,
            v.excluded
        );
        // Ablation: nothing but the database.
        let blind = PipelineConfig {
            use_active_probing: false,
            use_hoiho: false,
            use_ipmap: false,
            use_single_radius: false,
            ..base
        };
        let v = pipeline(blind).locate(task);
        println!(
            "  database only       : location {:?}, excluded {} (unvalidated claims are excluded — the paper's conservative policy)",
            v.location.map(|c| c.to_string()),
            v.excluded
        );
    }

    // Aggregate effect of each stage (the Table 4 ablation).
    println!("\n=== stage ablations over every discovered address ===");
    let tasks: Vec<GeoTask> = world
        .registry
        .servers()
        .iter()
        .take(400)
        .map(|s| GeoTask { ip: s.ip, serving_country: vantage })
        .collect();
    for (name, config) in [
        ("full pipeline", base),
        ("no active probing", PipelineConfig { use_active_probing: false, ..base }),
        ("no HOIHO", PipelineConfig { use_hoiho: false, ..base }),
        ("no IPmap", PipelineConfig { use_ipmap: false, ..base }),
        ("no single-radius", PipelineConfig { use_single_radius: false, ..base }),
    ] {
        let (_, stats) = pipeline(config).locate_all(&tasks);
        println!("  {name:<18}: confirmation rate {:.1}%", stats.confirmation_rate() * 100.0);
    }
}

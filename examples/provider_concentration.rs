//! Centralization what-if: how exposed are governments to a single global
//! provider's failure? Reproduces the §7 concentration view, then
//! simulates the paper's implicit risk scenario — the leading provider
//! going dark (the Dyn-outage motif from the related work).
//!
//! ```text
//! cargo run --release --example provider_concentration [scale]
//! ```

use govhost::prelude::*;
use govhost::report::histogram;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let world = World::generate(&GenParams { scale, ..GenParams::default() });
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let providers = ProviderAnalysis::compute(&dataset);

    println!("=== global-provider concentration (§7.1) ===\n");
    let items: Vec<(String, f64)> = providers
        .histogram()
        .into_iter()
        .take(12)
        .map(|(asn, n)| {
            let name = govhost::worldgen::providers::provider_by_asn(asn.value())
                .map(|p| p.name.to_string())
                .unwrap_or_else(|| asn.to_string());
            (name, n as f64)
        })
        .collect();
    print!("{}", histogram(&items, 50));

    let Some(leader) = providers.leader() else {
        println!("no global providers observed");
        return;
    };
    println!("\n=== outage scenario: {} goes dark ===\n", leader.org);
    let mut affected: Vec<(CountryCode, f64)> = leader
        .byte_share
        .iter()
        .map(|(c, s)| (*c, *s))
        .collect();
    affected.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite shares"));
    println!(
        "{} governments would lose service; worst-hit countries by byte share:",
        affected.len()
    );
    for (country, share) in affected.iter().take(8) {
        let row = govhost::worldgen::countries::country(*country);
        println!(
            "  {country} ({}): {:.0}% of government bytes unreachable",
            row.map(|r| r.name).unwrap_or("?"),
            share * 100.0
        );
    }
    let severe = affected.iter().filter(|(_, s)| *s > 0.25).count();
    println!(
        "\n{severe} of {} affected governments would lose over a quarter of their bytes —",
        affected.len()
    );
    println!("the centralization risk §7 quantifies with the HHI analysis.");
}

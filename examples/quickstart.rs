//! Quickstart: generate a world, run the full measurement pipeline, print
//! the paper's headline findings.
//!
//! ```text
//! cargo run --release --example quickstart [scale]
//! ```

use govhost::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    println!("generating a simulated Internet at scale {scale}...");
    let params = GenParams { scale, ..GenParams::default() };
    let world = World::generate(&params);
    println!(
        "  {} ASes, {} servers, {} websites, {} DNS zones",
        world.registry.as_count(),
        world.registry.servers().len(),
        world.corpus.len(),
        world.resolver.zone_count()
    );

    println!("running the §3 methodology (crawl → classify → identify → geolocate)...");
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let summary = dataset.summary();
    println!(
        "  {} unique URLs on {} government hostnames across {} ASes ({} government-operated)",
        summary.unique_urls, summary.unique_hostnames, summary.ases, summary.govt_ases
    );

    let hosting = HostingAnalysis::compute(&dataset);
    let shares = hosting.global_country_mean();
    println!("\nheadline findings (paper values in parentheses):");
    println!(
        "  third-party hosting: {:.0}% of URLs (62%), {:.0}% of bytes (53%)",
        shares.third_party_urls() * 100.0,
        shares.third_party_bytes() * 100.0
    );

    let location = LocationAnalysis::compute(&dataset);
    println!(
        "  served domestically: {:.0}% of URLs (87%); domestically registered: {:.0}% (77%)",
        location.geolocation.domestic_fraction() * 100.0,
        location.registration.domestic_fraction() * 100.0
    );

    let providers = ProviderAnalysis::compute(&dataset);
    if let Some(leader) = providers.leader() {
        println!(
            "  most-adopted global provider: {} serving {} governments (Cloudflare, 49)",
            leader.org,
            leader.countries.len()
        );
    }

    let crossborder = CrossBorderAnalysis::compute(&dataset);
    println!(
        "  GDPR: {:.1}% of EU government URLs served within the EU (98.3%)",
        crossborder.gdpr_compliance() * 100.0
    );
    println!("\ndone. Try `cargo run --release -p govhost-bench --bin repro` for every table & figure.");
}

//! Digital-sovereignty audit of a single country: the kind of downstream
//! analysis the paper's dataset enables. Where is this government's web
//! estate hosted, who controls it, and how concentrated is it?
//!
//! ```text
//! cargo run --release --example sovereignty_audit [CC] [scale]
//! ```

use govhost::core::diversification::DiversificationAnalysis;
use govhost::prelude::*;
use govhost::types::ProviderCategory;

fn main() {
    let code: CountryCode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "AR".to_string())
        .parse()
        .expect("first argument must be a two-letter country code");
    let scale: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);

    let row = govhost::worldgen::countries::country(code)
        .unwrap_or_else(|| panic!("{code} is not in the 61-country sample"));
    println!("=== digital sovereignty audit: {} ({code}) ===", row.name);

    let world = World::generate(&GenParams { scale, ..GenParams::default() });
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let hosting = HostingAnalysis::compute(&dataset);
    let location = LocationAnalysis::compute(&dataset);
    let crossborder = CrossBorderAnalysis::compute(&dataset);
    let diversification = DiversificationAnalysis::compute(&dataset, &hosting);

    let Some(shares) = hosting.per_country.get(&code) else {
        println!("no data collected for {code} (the paper's Table 8 has an empty row for KR)");
        return;
    };

    println!("\nhosting mix (URLs / bytes):");
    for category in ProviderCategory::ALL {
        println!(
            "  {:<12} {:>5.1}% / {:>5.1}%",
            category.label(),
            shares.urls[category.index()] * 100.0,
            shares.bytes[category.index()] * 100.0
        );
    }
    println!("  dominant source by bytes: {}", shares.dominant_by_bytes());

    if let Some(offshore) = location.offshore_percent(code) {
        println!("\ncross-border exposure: {offshore:.1}% of URLs served from abroad");
        for (dest, n) in crossborder.location.outflows(code).into_iter().take(5) {
            println!(
                "  -> {dest}: {n} URLs ({:.1}% of the government's located URLs)",
                crossborder.percent_served_from(code, dest)
            );
        }
    }

    if govhost::worldgen::countries::is_eu(code) {
        let eu_ok = crossborder
            .location
            .outflows(code)
            .iter()
            .filter(|(d, _)| !govhost::worldgen::countries::is_eu(*d))
            .map(|(_, n)| *n)
            .sum::<u64>();
        println!("  EU member: {eu_ok} URLs leave the EU (GDPR exposure)");
    }

    if let Some(conc) = diversification.per_country.get(&code) {
        println!("\nconcentration:");
        println!("  HHI across networks: {:.2} (URLs), {:.2} (bytes)", conc.hhi_urls, conc.hhi_bytes);
        println!(
            "  largest single network carries {:.0}% of bytes{}",
            conc.top_network_byte_share * 100.0,
            if conc.top_network_byte_share > 0.5 {
                " — a single point of failure"
            } else {
                ""
            }
        );
    }

    // Which organizations actually serve this government?
    let mut orgs: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for (_, host) in dataset.country_urls(code) {
        if let Some(org) = &host.org {
            *orgs.entry(org.as_str()).or_default() += 1;
        }
    }
    let mut orgs: Vec<(&str, u64)> = orgs.into_iter().collect();
    orgs.sort_by_key(|o| std::cmp::Reverse(o.1));
    println!("\ntop serving organizations:");
    for (org, urls) in orgs.into_iter().take(6) {
        println!("  {urls:>6} URLs  {org}");
    }
}

//! The `govhost` command-line tool: generate worlds, build and export
//! datasets, re-analyze exported data, dump crawl/zone artifacts, and run
//! the longitudinal extension.
//!
//! ```text
//! govhost dataset --scale 0.1 --out ./data        # build + export CSVs
//! govhost analyze --dir ./data                    # analyses from CSVs
//! govhost trends --scale 0.05 --steps 0.0,0.15,0.3
//! govhost har --country AR --out ./data           # HAR of one country crawl
//! govhost zone --host <hostname>                  # dump a zone file
//! govhost serve --scale 0.1 --addr 127.0.0.1:8080 # HTTP query server
//! govhost evolve --years 10 --scale 0.05          # yearly ticks + trend table
//! govhost scenario what-if.scn --scale 0.1        # counterfactual report cards
//! ```

use govhost::core::export::{export_csv_full, import_csv, DatasetCsv};
use govhost::core::trends::TrendAnalysis;
use govhost::prelude::*;
use govhost::web::crawler::{crawl_sites_parallel, Crawler};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_die("missing command");
    };
    // `scenario` takes its file as a positional argument, before flags.
    if command == "scenario" {
        let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
            usage_die("scenario needs a file: govhost scenario FILE [flags]");
        };
        let flags = Flags::parse(&args[2..]);
        cmd_scenario(std::path::Path::new(file), &flags);
        return;
    }
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "dataset" => cmd_dataset(&flags),
        "analyze" => cmd_analyze(&flags),
        "trends" => cmd_trends(&flags),
        "har" => cmd_har(&flags),
        "zone" => cmd_zone(&flags),
        "serve" => cmd_serve(&flags),
        "evolve" => cmd_evolve(&flags),
        "--help" | "-h" | "help" => usage(),
        other => usage_die(&format!("unknown command {other:?}")),
    }
}

fn usage() {
    eprintln!(
        "usage: govhost <command> [flags]\n\
         commands:\n\
           dataset  --scale S --seed N --out DIR    build the dataset and export CSVs\n\
           analyze  --dir DIR                       run the analyses over exported CSVs\n\
           trends   --scale S --steps a,b,c         longitudinal consolidation run\n\
           har      --country CC --out DIR          export one country's crawl as HAR JSON\n\
           zone     --host HOSTNAME                 print a hostname's zone as a master file\n\
           serve    --scale S --addr HOST:PORT      build the dataset and serve JSON queries\n\
                    [--threads N]                   (worker count; GOVHOST_SERVE_THREADS)\n\
                    [--max-conns N]                 (in-flight cap before 503 shedding)\n\
                    [--idle-timeout-ms N]           (idle keep-alive eviction deadline)\n\
                    [--query-cache N]               (parameterized result-cache entries; 0 disables)\n\
                    [--years N]                     (evolve N yearly ticks; history routes cover them)\n\
                    [--scenario FILE]               (evaluate a scenario file; /scenario/.. routes)\n\
           evolve   --years N --scale S --seed N    tick the world N years and print the trend table\n\
                                                    (tick roster via GOVHOST_TICKS; default 5 years)\n\
           scenario FILE --scale S --seed N         evaluate what-if scenarios and print report cards"
    );
}

struct Flags {
    scale: f64,
    seed: u64,
    out: PathBuf,
    dir: PathBuf,
    country: String,
    host: String,
    steps: Vec<f64>,
    addr: String,
    years: u32,
    threads: usize,
    max_conns: usize,
    idle_timeout_ms: u64,
    query_cache: usize,
    scenario: PathBuf,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut f = Flags {
            scale: 0.05,
            seed: 42,
            out: PathBuf::from("."),
            dir: PathBuf::from("."),
            country: "AR".to_string(),
            host: String::new(),
            steps: vec![0.0, 0.15, 0.3],
            addr: "127.0.0.1:8080".to_string(),
            years: 0,
            threads: 0,
            max_conns: 0,
            idle_timeout_ms: 0,
            query_cache: govhost::serve::DEFAULT_RESULT_CACHE,
            scenario: PathBuf::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            match args[i].as_str() {
                "--scale" => {
                    f.scale = value.parse().unwrap_or_else(|_| usage_die("bad --scale"))
                }
                "--seed" => f.seed = value.parse().unwrap_or_else(|_| usage_die("bad --seed")),
                "--out" => f.out = PathBuf::from(&value),
                "--dir" => f.dir = PathBuf::from(&value),
                "--country" => f.country = value.clone(),
                "--host" => f.host = value.clone(),
                "--steps" => {
                    f.steps = value
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage_die("bad --steps")))
                        .collect()
                }
                "--addr" => f.addr = value.clone(),
                "--years" => {
                    f.years = value.parse().unwrap_or_else(|_| usage_die("bad --years"))
                }
                "--threads" => {
                    f.threads = value.parse().unwrap_or_else(|_| usage_die("bad --threads"))
                }
                "--max-conns" => {
                    f.max_conns =
                        value.parse().unwrap_or_else(|_| usage_die("bad --max-conns"))
                }
                "--idle-timeout-ms" => {
                    f.idle_timeout_ms =
                        value.parse().unwrap_or_else(|_| usage_die("bad --idle-timeout-ms"))
                }
                "--query-cache" => {
                    f.query_cache =
                        value.parse().unwrap_or_else(|_| usage_die("bad --query-cache"))
                }
                "--scenario" => f.scenario = PathBuf::from(&value),
                other => usage_die(&format!("unknown flag {other}")),
            }
            i += 2;
        }
        f
    }
}

/// A runtime failure (I/O, bad data): report and exit nonzero.
fn die(msg: &str) -> ! {
    eprintln!("govhost: {msg}");
    std::process::exit(2);
}

/// A usage error (unknown command/flag, unparsable value): report,
/// print usage to stderr, exit nonzero.
fn usage_die(msg: &str) -> ! {
    eprintln!("govhost: {msg}");
    usage();
    std::process::exit(2);
}

fn params(flags: &Flags) -> GenParams {
    GenParams { scale: flags.scale, seed: flags.seed, ..GenParams::default() }
}

fn cmd_dataset(flags: &Flags) {
    eprintln!("generating world (seed {}, scale {})...", flags.seed, flags.scale);
    let world = World::generate(&params(flags));
    let (dataset, report) = GovDataset::try_build(&world, &BuildOptions::default())
        .unwrap_or_else(|e| die(&e.to_string()));
    let summary = dataset.summary();
    eprintln!(
        "built: {} URLs, {} hostnames, {} ASes ({} government)",
        summary.unique_urls, summary.unique_hostnames, summary.ases, summary.govt_ases
    );
    let csv = export_csv_full(&dataset, Some(&report));
    std::fs::create_dir_all(&flags.out).unwrap_or_else(|e| die(&e.to_string()));
    let hosts_path = flags.out.join("hosts.csv");
    let urls_path = flags.out.join("urls.csv");
    let meta_path = flags.out.join("meta.csv");
    std::fs::write(&hosts_path, csv.hosts).unwrap_or_else(|e| die(&e.to_string()));
    std::fs::write(&urls_path, csv.urls).unwrap_or_else(|e| die(&e.to_string()));
    std::fs::write(&meta_path, csv.meta).unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "wrote {}, {} and {}",
        hosts_path.display(),
        urls_path.display(),
        meta_path.display()
    );
    // The build's telemetry capture rides along with the CSVs unless
    // GOVHOST_TRACE=0 turned it off.
    let written = govhost::obs::export::write_files(&dataset.telemetry, &flags.out)
        .unwrap_or_else(|e| die(&e.to_string()));
    for path in written {
        println!("wrote {}", path.display());
    }
}

fn cmd_analyze(flags: &Flags) {
    let hosts = std::fs::read_to_string(flags.dir.join("hosts.csv"))
        .unwrap_or_else(|e| die(&format!("hosts.csv: {e}")));
    let urls = std::fs::read_to_string(flags.dir.join("urls.csv"))
        .unwrap_or_else(|e| die(&format!("urls.csv: {e}")));
    // Older exports have no metadata document; counters default to zero.
    let meta = std::fs::read_to_string(flags.dir.join("meta.csv")).unwrap_or_default();
    let dataset =
        import_csv(&DatasetCsv { hosts, urls, meta }).unwrap_or_else(|e| die(&e.to_string()));
    let hosting = HostingAnalysis::compute(&dataset);
    let mean = hosting.global_country_mean();
    let location = LocationAnalysis::compute(&dataset);
    let providers = ProviderAnalysis::compute(&dataset);
    println!("dataset: {} URLs / {} hostnames", dataset.urls.len(), dataset.hosts.len());
    println!(
        "third-party share: {:.1}% of URLs, {:.1}% of bytes",
        mean.third_party_urls() * 100.0,
        mean.third_party_bytes() * 100.0
    );
    println!(
        "domestic: {:.1}% served, {:.1}% registered",
        location.geolocation.domestic_fraction() * 100.0,
        location.registration.domestic_fraction() * 100.0
    );
    if let Some(leader) = providers.leader() {
        println!("leading provider: {} ({} governments)", leader.org, leader.countries.len());
    }
}

fn cmd_trends(flags: &Flags) {
    let steps: Vec<(String, f64)> = flags
        .steps
        .iter()
        .enumerate()
        .map(|(i, d)| (format!("snapshot-{i}"), *d))
        .collect();
    eprintln!("running {} snapshots at scale {}...", steps.len(), flags.scale);
    let trend = TrendAnalysis::run(&params(flags), &steps, &BuildOptions::default());
    println!("label        drift   3P URLs   3P bytes  domestic  leader-countries  state-led");
    for s in &trend.snapshots {
        println!(
            "{:<12} {:<7.2} {:<9.3} {:<9.3} {:<9.3} {:<17} {}",
            s.label,
            s.drift,
            s.third_party_urls,
            s.third_party_bytes,
            s.domestic_serving,
            s.leader_countries,
            s.state_led_countries
        );
    }
    println!(
        "consolidation Δ(3P URLs) = {:+.3}, monotone: {}",
        trend.third_party_delta(),
        trend.consolidation_is_monotone()
    );
}

fn cmd_har(flags: &Flags) {
    let code: CountryCode =
        flags.country.parse().unwrap_or_else(|_| die("bad --country code"));
    let world = World::generate(&params(flags));
    let landing = world.landing(code);
    if landing.is_empty() {
        die(&format!("no landing pages for {code}"));
    }
    let vantage = world.vantage(code);
    let jobs: Vec<_> =
        landing.iter().map(|u| (u.clone(), Some(vantage.country))).collect();
    let outcomes = crawl_sites_parallel(&world.corpus, &Crawler::default(), &jobs, 4);
    let mut log = govhost::web::har::HarLog::new();
    for outcome in outcomes {
        log.merge(outcome.log);
    }
    let json = govhost::web::to_har_json(&log);
    std::fs::create_dir_all(&flags.out).unwrap_or_else(|e| die(&e.to_string()));
    let path = flags.out.join(format!("{}.har.json", code.as_str().to_lowercase()));
    std::fs::write(&path, &json).unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "wrote {} ({} entries, {} bytes captured)",
        path.display(),
        log.entries.len(),
        log.total_bytes()
    );
}

fn cmd_serve(flags: &Flags) {
    use govhost::serve::{resolve_serve_threads, ServeState, Server, ServerConfig, ROUTES};
    eprintln!("generating world (seed {}, scale {})...", flags.seed, flags.scale);
    let mut world = World::generate(&params(flags));
    // `--years N` runs the longitudinal ticks up front and serves the
    // evolved world's final dataset with the full multi-year timeline
    // behind the history routes; without it those routes answer the
    // single year-0 snapshot.
    let state = if flags.years > 0 {
        eprintln!("evolving {} years...", flags.years);
        let outcome =
            govhost::core::evolve::evolve(&mut world, flags.years, &BuildOptions::default())
                .unwrap_or_else(|e| die(&e.to_string()));
        ServeState::with_timeline_cache_capacity(
            &outcome.dataset,
            &outcome.timeline,
            flags.query_cache,
        )
    } else {
        let (dataset, _report) = GovDataset::try_build(&world, &BuildOptions::default())
            .unwrap_or_else(|e| die(&e.to_string()));
        ServeState::with_cache_capacity(&dataset, flags.query_cache)
    };
    // `--scenario FILE` evaluates the what-if file against the same
    // year-0 parameters and prerenders `/scenario/{name}[/diff]`.
    let state = if flags.scenario.as_os_str().is_empty() {
        state
    } else {
        let runs = load_scenarios(&flags.scenario, flags);
        let index = govhost::serve::ScenarioIndex::build(&runs);
        eprintln!(
            "scenarios: {}",
            index.names().collect::<Vec<_>>().join(" ")
        );
        state.with_scenarios(index)
    };
    let state = std::sync::Arc::new(state);
    let threads =
        if flags.threads > 0 { flags.threads } else { resolve_serve_threads() };
    let mut config = ServerConfig { threads, ..ServerConfig::default() };
    if flags.max_conns > 0 {
        config.max_conns = flags.max_conns;
    }
    if flags.idle_timeout_ms > 0 {
        config.idle_timeout = std::time::Duration::from_millis(flags.idle_timeout_ms);
    }
    let (max_conns, idle) = (config.max_conns, config.idle_timeout);
    let server = Server::bind(state, flags.addr.as_str(), config)
        .unwrap_or_else(|e| die(&format!("bind {}: {e}", flags.addr)));
    println!(
        "serving on http://{} with {threads} workers (max-conns {max_conns}, idle-timeout {:?})",
        server.local_addr(),
        idle
    );
    println!("routes: {}", ROUTES.join(" "));
    println!("press Ctrl-C to stop");
    // Serve until the process is killed; the acceptor and workers run
    // in background threads.
    loop {
        std::thread::park();
    }
}

/// Read, parse and evaluate a scenario file; any failure is fatal with
/// the parser's `line N:` diagnostics passed through verbatim.
fn load_scenarios(file: &std::path::Path, flags: &Flags) -> Vec<govhost::scenario::ScenarioRun> {
    let text = std::fs::read_to_string(file)
        .unwrap_or_else(|e| die(&format!("{}: {e}", file.display())));
    let parsed = govhost::scenario::parse(&text)
        .unwrap_or_else(|e| die(&format!("{}: {e}", file.display())));
    if parsed.scenarios.is_empty() {
        die(&format!("{}: no scenarios declared", file.display()));
    }
    eprintln!(
        "evaluating {} scenario(s) (seed {}, scale {})...",
        parsed.scenarios.len(),
        flags.seed,
        flags.scale
    );
    govhost::scenario::run_file(&params(flags), &parsed, &BuildOptions::default())
        .unwrap_or_else(|e| die(&e.to_string()))
}

fn cmd_scenario(file: &std::path::Path, flags: &Flags) {
    let runs = load_scenarios(file, flags);
    for run in &runs {
        println!(
            "scenario {}: {} events, {} countries touched",
            run.name,
            run.events.len(),
            run.dirty.len()
        );
        let mut table = govhost::report::Table::new(vec![
            "country",
            "overall",
            "concentration",
            "exposure",
            "resilience",
            "hhi(bytes)",
            "offshore%",
            "dark%",
            "ns-only%",
        ]);
        for c in govhost::scenario::report_cards(run) {
            table.row(vec![
                c.country.as_str().to_string(),
                c.overall.to_string(),
                c.concentration.to_string(),
                c.exposure.to_string(),
                c.resilience.to_string(),
                format!("{:.3}", c.hhi_bytes),
                c.offshore_percent.map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
                format!("{:.1}", c.dark_percent),
                format!("{:.1}", c.ns_only_percent),
            ]);
        }
        print!("{}", table.render());
        let insights = run.insights();
        if insights.is_empty() {
            println!("no measurable change against the baseline");
        } else {
            for (i, insight) in insights.iter().enumerate() {
                println!("{:>3}. {}", i + 1, insight.text);
            }
        }
        println!();
    }
}

fn cmd_evolve(flags: &Flags) {
    let years = if flags.years > 0 { flags.years } else { 5 };
    eprintln!("generating world (seed {}, scale {})...", flags.seed, flags.scale);
    let mut world = World::generate(&params(flags));
    eprintln!("evolving {years} years...");
    let outcome = govhost::core::evolve::evolve(&mut world, years, &BuildOptions::default())
        .unwrap_or_else(|e| die(&e.to_string()));
    println!("year  dirty  events  HHI(urls)  HHI(bytes)  state-led  3P-URLs  rebuild-ms");
    for y in &outcome.timeline.years {
        // Year 0 is the pre-tick baseline: no events, no rebuild.
        let tick = outcome.ticks.iter().find(|t| t.year == y.year);
        let events = tick.map_or("-".to_string(), |t| t.events.len().to_string());
        let rebuild = tick
            .map_or("-".to_string(), |t| format!("{:.1}", t.rebuild.as_secs_f64() * 1000.0));
        println!(
            "{:<5} {:<6} {:<7} {:<10.4} {:<11.4} {:<10} {:<8.4} {rebuild}",
            y.year,
            y.dirty.len(),
            events,
            y.mean_hhi_urls,
            y.mean_hhi_bytes,
            y.state_led,
            y.third_party_urls
        );
    }
    let last = outcome.timeline.latest().expect("timeline has year 0");
    let first = &outcome.timeline.years[0];
    println!(
        "Δ over {years} years: mean HHI(urls) {:+.4}, state-led {:+}, 3P URLs {:+.4}",
        last.mean_hhi_urls - first.mean_hhi_urls,
        last.state_led as i64 - first.state_led as i64,
        last.third_party_urls - first.third_party_urls
    );
}

fn cmd_zone(flags: &Flags) {
    if flags.host.is_empty() {
        die("zone needs --host");
    }
    let host: Hostname = flags.host.parse().unwrap_or_else(|_| die("bad --host"));
    let world = World::generate(&params(flags));
    // Reconstruct the zone content by resolving: print what the
    // authoritative data looks like for this hostname.
    let vantage = world
        .truth
        .host(&host)
        .map(|t| t.country)
        .unwrap_or_else(|| "US".parse().expect("static"));
    match world.resolver.resolve_host(&host, Some(vantage)) {
        Ok(answer) => {
            let mut zone = govhost::dns::Zone::new(govhost::dns::DnsName::from(&host));
            let apex = govhost::dns::DnsName::from(&host);
            if let Some(target) = answer.first_cname() {
                zone.add(apex, govhost::dns::RData::Cname(target.clone()));
            } else {
                for ip in &answer.addresses {
                    zone.add(apex.clone(), govhost::dns::RData::A(*ip));
                }
            }
            print!("{}", govhost::dns::to_zone_file(&zone, 300));
        }
        Err(e) => die(&format!("{host} does not resolve: {e}")),
    }
}

//! # govhost
//!
//! A full reproduction of *"Of Choices and Control — A Comparative Analysis
//! of Government Hosting"* (IMC 2024) as a Rust library.
//!
//! The paper measures how 61 governments host their public-facing web
//! services: on-premises (government or state-owned networks) versus
//! third-party providers (local / regional / global), where the serving
//! organizations are registered, where the servers physically sit, and how
//! concentrated the provider market is.
//!
//! Because the original study runs against the live Internet (VPN vantage
//! points, live DNS, WHOIS, RIPE Atlas probes), this crate ships a
//! deterministic simulated Internet substrate calibrated to the paper's
//! published statistics, plus the complete measurement pipeline run against
//! that substrate. See `DESIGN.md` for the substitution table and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use govhost::prelude::*;
//!
//! // Generate a small deterministic world and run the full pipeline.
//! let params = GenParams::tiny();
//! let world = World::generate(&params);
//! let dataset = GovDataset::build(&world, &BuildOptions::default());
//! let hosting = HostingAnalysis::compute(&dataset);
//! println!("3P URL share: {:.2}", hosting.global.third_party_urls());
//! assert!(hosting.global.third_party_urls() > 0.0);
//! ```
pub use govhost_core as core;
pub use govhost_dns as dns;
pub use govhost_geoloc as geoloc;
pub use govhost_netsim as netsim;
pub use govhost_obs as obs;
pub use govhost_report as report;
pub use govhost_scenario as scenario;
pub use govhost_serve as serve;
pub use govhost_stats as stats;
pub use govhost_types as types;
pub use govhost_web as web;
pub use govhost_worldgen as worldgen;

/// Convenience re-exports covering the common end-to-end flow: generate a
/// world, build the dataset, run the analyses.
pub mod prelude {
    pub use govhost_core::prelude::*;
    pub use govhost_types::prelude::*;
    pub use govhost_worldgen::prelude::*;
}

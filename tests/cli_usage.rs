//! The `govhost` binary's error contract, tested against the real
//! executable: every *usage* error (unknown command or flag, an
//! unparsable value) prints the message **and** the usage text to
//! stderr and exits nonzero, while *runtime* errors report without the
//! usage dump. `CARGO_BIN_EXE_govhost` points at the binary cargo built
//! for this test run.

use std::process::{Command, Output};

fn govhost(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_govhost"))
        .args(args)
        .output()
        .expect("spawn the govhost binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_usage_error(out: &Output, expect: &str) {
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = stderr(out);
    assert!(err.contains(expect), "stderr should mention {expect:?}: {err}");
    assert!(err.contains("usage: govhost"), "usage text follows the error: {err}");
    assert!(out.stdout.is_empty(), "errors go to stderr, not stdout");
}

#[test]
fn missing_command_is_a_usage_error() {
    assert_usage_error(&govhost(&[]), "missing command");
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_usage_error(&govhost(&["frobnicate"]), "unknown command \"frobnicate\"");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&govhost(&["dataset", "--bogus", "1"]), "unknown flag --bogus");
}

#[test]
fn malformed_flag_values_are_usage_errors() {
    assert_usage_error(&govhost(&["dataset", "--scale", "banana"]), "bad --scale");
    assert_usage_error(&govhost(&["dataset", "--seed", "1.5"]), "bad --seed");
    assert_usage_error(&govhost(&["trends", "--steps", "0.1,x"]), "bad --steps");
    assert_usage_error(&govhost(&["serve", "--threads", "many"]), "bad --threads");
    assert_usage_error(&govhost(&["serve", "--max-conns", "lots"]), "bad --max-conns");
    assert_usage_error(&govhost(&["serve", "--idle-timeout-ms", "-3"]), "bad --idle-timeout-ms");
    assert_usage_error(&govhost(&["serve", "--query-cache", "big"]), "bad --query-cache");
    assert_usage_error(&govhost(&["evolve", "--years", "soon"]), "bad --years");
}

#[test]
fn scenario_without_a_file_is_a_usage_error() {
    assert_usage_error(&govhost(&["scenario"]), "scenario needs a file");
    // A flag where the file should be is the same mistake.
    assert_usage_error(&govhost(&["scenario", "--scale", "0.1"]), "scenario needs a file");
}

#[test]
fn usage_mentions_every_command() {
    let out = govhost(&[]);
    let err = stderr(&out);
    for command in ["dataset", "analyze", "trends", "har", "zone", "serve", "evolve", "scenario"]
    {
        assert!(err.contains(command), "usage should list {command:?}: {err}");
    }
    assert!(err.contains("--addr"), "serve's address flag is documented: {err}");
    assert!(err.contains("--years"), "the tick-count flag is documented: {err}");
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for arg in ["help", "--help", "-h"] {
        let out = govhost(&[arg]);
        assert_eq!(out.status.code(), Some(0), "{arg} is not an error");
        assert!(stderr(&out).contains("usage: govhost"));
    }
}

#[test]
fn runtime_errors_fail_without_the_usage_dump() {
    // `zone` with no --host is a well-formed invocation that fails at
    // runtime: nonzero exit, message, but no usage text.
    let out = govhost(&["zone"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("zone needs --host"), "{err}");
    assert!(!err.contains("usage: govhost"), "runtime errors skip the usage dump: {err}");
    // So is a scenario file that does not exist or does not parse: the
    // diagnostics pass through, the usage text stays out of the way.
    let out = govhost(&["scenario", "/no/such/file.scn"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("/no/such/file.scn"), "{err}");
    assert!(!err.contains("usage: govhost"), "runtime errors skip the usage dump: {err}");
}

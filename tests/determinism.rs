//! Reproducibility guarantees: the same parameters always produce the
//! same world, the same dataset, and the same analysis outputs — across
//! runs and across crawl thread counts.

use govhost::prelude::*;

#[test]
fn same_seed_same_world_same_dataset() {
    let params = GenParams::tiny();
    let w1 = World::generate(&params);
    let w2 = World::generate(&params);
    assert_eq!(w1.registry.servers().len(), w2.registry.servers().len());
    for (a, b) in w1.registry.servers().iter().zip(w2.registry.servers()) {
        assert_eq!(a.ip, b.ip);
        assert_eq!(a.asn, b.asn);
        assert_eq!(a.anycast, b.anycast);
        assert_eq!(a.icmp_responsive, b.icmp_responsive);
        assert_eq!(a.ptr, b.ptr);
    }

    let d1 = GovDataset::build(&w1, &BuildOptions::default());
    let d2 = GovDataset::build(&w2, &BuildOptions::default());
    assert_eq!(d1.urls.len(), d2.urls.len());
    assert_eq!(d1.hosts.len(), d2.hosts.len());
    assert_eq!(d1.method_counts, d2.method_counts);
    assert_eq!(d1.validation, d2.validation);
    for (a, b) in d1.hosts.iter().zip(&d2.hosts) {
        assert_eq!(a.hostname, b.hostname);
        assert_eq!(a.category, b.category);
        assert_eq!(a.server_country, b.server_country);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let world = World::generate(&GenParams::tiny());
    let base = GovDataset::build(&world, &BuildOptions { threads: 1, ..Default::default() });
    for threads in [2, 4, 8] {
        let other =
            GovDataset::build(&world, &BuildOptions { threads, ..Default::default() });
        assert_eq!(base.urls.len(), other.urls.len(), "threads={threads}");
        assert_eq!(base.method_counts, other.method_counts, "threads={threads}");
        assert_eq!(base.validation, other.validation, "threads={threads}");
        let h1 = HostingAnalysis::compute(&base);
        let h2 = HostingAnalysis::compute(&other);
        assert_eq!(h1.global, h2.global, "threads={threads}");
    }
}

/// The tentpole invariant of the parallel build: at a realistic scale,
/// every observable surface of the dataset — host records (in order),
/// geolocation verdict-derived fields, per-stage item counts, and the
/// CSV export bytes — is identical for any thread count. Wall-clock
/// timings are the only thing allowed to differ.
#[test]
fn parallel_build_is_bit_identical_at_scale() {
    let world = World::generate(&GenParams { scale: 0.3, ..GenParams::default() });
    let base = GovDataset::build(&world, &BuildOptions { threads: 1, ..Default::default() });
    let base_csv = export_csv(&base);
    for threads in [2, 8] {
        let other = GovDataset::build(&world, &BuildOptions { threads, ..Default::default() });
        assert_eq!(base.urls.len(), other.urls.len(), "threads={threads}");
        assert_eq!(base.method_counts, other.method_counts, "threads={threads}");
        assert_eq!(base.validation, other.validation, "threads={threads}");
        assert_eq!(base.crawl_failures, other.crawl_failures, "threads={threads}");
        assert_eq!(base.hosts.len(), other.hosts.len(), "threads={threads}");
        for (a, b) in base.hosts.iter().zip(&other.hosts) {
            assert_eq!(a.hostname, b.hostname, "threads={threads}");
            assert_eq!(a.country, b.country, "threads={threads}");
            assert_eq!(a.method, b.method, "threads={threads}");
            assert_eq!(a.ip, b.ip, "threads={threads}");
            assert_eq!(a.asn, b.asn, "threads={threads}");
            assert_eq!(a.category, b.category, "threads={threads}");
            // Geolocation verdict order: server_country and the anycast
            // flag come straight out of locate_all_threaded.
            assert_eq!(a.server_country, b.server_country, "threads={threads}");
            assert_eq!(a.anycast, b.anycast, "threads={threads}");
        }
        // Stage item counts are deterministic; wall times are not.
        assert_eq!(
            base.timings.item_counts(),
            other.timings.item_counts(),
            "threads={threads}"
        );
        let csv = export_csv(&other);
        assert_eq!(base_csv.hosts, csv.hosts, "hosts.csv differs at threads={threads}");
        assert_eq!(base_csv.urls, csv.urls, "urls.csv differs at threads={threads}");
    }
}

#[test]
fn different_seeds_produce_different_worlds_same_shape() {
    let a = World::generate(&GenParams { seed: 1, ..GenParams::tiny() });
    let b = World::generate(&GenParams { seed: 2, ..GenParams::tiny() });
    // Different micro-state...
    let differs = a
        .registry
        .servers()
        .iter()
        .zip(b.registry.servers())
        .any(|(x, y)| x.icmp_responsive != y.icmp_responsive || x.ptr != y.ptr);
    assert!(differs);
    // ...same macro-shape: headline aggregates stay within a band.
    let da = GovDataset::build(&a, &BuildOptions::default());
    let db = GovDataset::build(&b, &BuildOptions::default());
    let ha = HostingAnalysis::compute(&da).global_country_mean().third_party_urls();
    let hb = HostingAnalysis::compute(&db).global_country_mean().third_party_urls();
    assert!(
        (ha - hb).abs() < 0.10,
        "seed changes must not move the 3P share materially: {ha} vs {hb}"
    );
}

#[test]
fn scale_changes_volume_not_shape() {
    let small = World::generate(&GenParams { scale: 0.02, ..GenParams::default() });
    let larger = World::generate(&GenParams { scale: 0.06, ..GenParams::default() });
    let ds = GovDataset::build(&small, &BuildOptions::default());
    let dl = GovDataset::build(&larger, &BuildOptions::default());
    assert!(dl.urls.len() > ds.urls.len() * 2, "volume scales with the knob");
    let hs = HostingAnalysis::compute(&ds).global_country_mean();
    let hl = HostingAnalysis::compute(&dl).global_country_mean();
    assert!(
        (hs.third_party_urls() - hl.third_party_urls()).abs() < 0.12,
        "shape is scale-stable: {} vs {}",
        hs.third_party_urls(),
        hl.third_party_urls()
    );
}

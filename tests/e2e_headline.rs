//! End-to-end reproduction checks: run the complete pipeline and assert
//! the paper's headline findings hold in *shape* — orderings, majorities,
//! and approximate magnitudes — at a moderate world scale.

use govhost::prelude::*;
use govhost::types::{ProviderCategory, Region};

fn build() -> (World, GovDataset) {
    let params = GenParams { scale: 0.15, ..GenParams::default() };
    let world = World::generate(&params);
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    (world, dataset)
}

#[test]
fn headline_findings_reproduce_in_shape() {
    let (_world, dataset) = build();
    let hosting = HostingAnalysis::compute(&dataset);
    let location = LocationAnalysis::compute(&dataset);

    // "Governments predominantly rely on third-party infrastructure,
    // using them to deliver 62% of URLs and 53% of bytes."
    let shares = hosting.global_country_mean();
    let tp_urls = shares.third_party_urls();
    let tp_bytes = shares.third_party_bytes();
    assert!((0.50..=0.75).contains(&tp_urls), "3P URL share {tp_urls} (paper 0.62)");
    assert!((0.40..=0.68).contains(&tp_bytes), "3P byte share {tp_bytes} (paper 0.53)");
    assert!(tp_urls > tp_bytes, "Govt&SOE is heavier in bytes than URLs (Fig. 2)");

    // "87% of government URLs are served from domestic servers" /
    // "77% from domestic organizations".
    let dom_geo = location.geolocation.domestic_fraction();
    let dom_whois = location.registration.domestic_fraction();
    assert!((0.75..=0.95).contains(&dom_geo), "domestic serving {dom_geo} (paper 0.87)");
    assert!((0.60..=0.88).contains(&dom_whois), "domestic registration {dom_whois} (paper 0.77)");
    assert!(
        dom_geo > dom_whois,
        "serving is more domestic than registration ({dom_geo} vs {dom_whois}) — foreign-registered providers with domestic PoPs"
    );

    // Regional orderings of Fig. 4b: SA most state-hosted by bytes, SSA least.
    let by_region = |r: Region| hosting.per_region[&r].bytes[ProviderCategory::GovtSoe.index()];
    let sa = by_region(Region::SouthAsia);
    let ssa = by_region(Region::SubSaharanAfrica);
    let na = by_region(Region::NorthAmerica);
    assert!(sa > 0.7, "South Asia is overwhelmingly Govt&SOE by bytes, got {sa} (paper 0.95)");
    assert!(ssa < 0.15, "Sub-Saharan Africa barely self-hosts, got {ssa} (paper ~0.00)");
    assert!(
        hosting.per_region[&Region::NorthAmerica].bytes[ProviderCategory::ThirdPartyGlobal.index()] > 0.4,
        "North America leans on global providers (paper 0.68), got {na}"
    );

    // Regional ordering of Fig. 8b: SSA serves the least domestically,
    // NA the most.
    let loc_dom = |r: Region| location.geolocation_by_region[&r].domestic_fraction();
    assert!(
        loc_dom(Region::SubSaharanAfrica) < loc_dom(Region::MiddleEastNorthAfrica),
        "SSA below MENA"
    );
    assert!(loc_dom(Region::NorthAmerica) > 0.93, "NA ~0.98 domestic");
    assert!(
        loc_dom(Region::SubSaharanAfrica) < 0.65,
        "SSA relies on international servers for about half its URLs (paper 0.52)"
    );
}

#[test]
fn provider_concentration_reproduces() {
    let (_world, dataset) = build();
    let providers = ProviderAnalysis::compute(&dataset);
    let hosting = HostingAnalysis::compute(&dataset);
    let diversification =
        govhost::core::diversification::DiversificationAnalysis::compute(&dataset, &hosting);

    // A single provider clearly leads the adoption histogram (Fig. 10).
    let histogram = providers.histogram();
    assert!(histogram.len() >= 8, "many global providers observed");
    assert!(
        histogram[0].1 >= 12,
        "the leader serves many governments, got {}",
        histogram[0].1
    );
    assert!(histogram[0].1 > histogram[histogram.len() - 1].1 * 3, "long-tailed histogram");

    // Somebody's byte dependence peaks high (Amazon 97% in the paper).
    let max_peak = providers
        .providers
        .iter()
        .filter_map(|p| p.peak_share().map(|(_, s)| s))
        .fold(0.0f64, f64::max);
    assert!(max_peak > 0.6, "at least one government leans hard on one provider: {max_peak}");

    // §7.2: state-hosted countries are much more concentrated than
    // global-provider countries.
    let govt = diversification.single_network_majority_rate(ProviderCategory::GovtSoe);
    let global = diversification.single_network_majority_rate(ProviderCategory::ThirdPartyGlobal);
    // The paper's gap is 31 points; at scale 0.15 the margin fluctuates
    // with the generation seed, so only a clear separation is pinned.
    assert!(
        govt > global + 0.10,
        "Govt&SOE countries more single-network-reliant: {govt} vs {global} (paper 63% vs 32%)"
    );
}

#[test]
fn cross_border_cases_reproduce() {
    let (_world, dataset) = build();
    let crossborder = CrossBorderAnalysis::compute(&dataset);

    let check = |src: &str, dst: &str, paper: f64, tolerance: f64| {
        let got =
            crossborder.percent_served_from(src.parse().unwrap(), dst.parse().unwrap());
        assert!(
            (got - paper).abs() <= tolerance,
            "{src}->{dst}: measured {got:.1}%, paper {paper}% (±{tolerance})"
        );
    };
    check("MX", "US", 79.2, 15.0);
    check("CN", "JP", 26.4, 12.0);
    check("NZ", "AU", 40.0, 18.0);
    check("FR", "NC", 18.0, 16.0);
    check("BR", "US", 1.8, 10.0);

    // GDPR: EU URLs stay in the EU.
    let gdpr = crossborder.gdpr_compliance();
    assert!(gdpr > 0.93, "GDPR compliance {gdpr} (paper 0.983)");

    // Most cross-border serving lands in North America + Western Europe.
    let na_weu = crossborder.na_weu_share();
    assert!(na_weu > 0.45, "NA+WEu share {na_weu} (paper 0.57)");

    // Table 5 shape: ECA and EAP stay in-region; MENA and SA leave.
    let in_region = crossborder.location.in_region_percent();
    let eca = in_region[&Region::EuropeCentralAsia];
    // Hostname granularity at small scale lets a single foreign host of a
    // high-volume country (Hungary, Belgium) move this several points.
    assert!(eca > 72.0, "ECA stays in-region: {eca}% (paper 94.87%)");
    let mena = in_region.get(&Region::MiddleEastNorthAfrica).copied().unwrap_or(0.0);
    assert!(mena < 15.0, "MENA leaves the region: {mena}% (paper 0%)");
}

#[test]
fn clustering_recovers_three_hosting_archetypes() {
    let (_world, dataset) = build();
    let hosting = HostingAnalysis::compute(&dataset);
    let sim = SimilarityAnalysis::compute(
        &hosting,
        govhost::core::similarity::SignatureKind::Bytes,
    );
    // Countries the paper pins to distinct branches.
    let uy: CountryCode = "UY".parse().unwrap(); // Govt&SOE branch
    let ind: CountryCode = "IN".parse().unwrap(); // Govt&SOE branch
    let it: CountryCode = "IT".parse().unwrap(); // 3P Local branch
    let ar: CountryCode = "AR".parse().unwrap(); // 3P Global branch
    assert!(sim.same_cluster(uy, ind, 3), "Uruguay and India share the state branch");
    assert!(!sim.same_cluster(uy, it, 3), "Uruguay and Italy split");
    assert!(!sim.same_cluster(it, ar, 3), "Italy and Argentina split");
    assert!(!sim.same_cluster(uy, ar, 3), "Uruguay and Argentina split");

    // The three-branch cut has three nonempty branches of sensible size.
    let labels = sim.clusters(3);
    for branch in 0..3 {
        let size = labels.iter().filter(|(_, l)| *l == branch).count();
        assert!(size >= 5, "branch {branch} has {size} countries");
    }
}

#[test]
fn topsites_comparison_reproduces() {
    let (world, dataset) = build();
    let tops = TopsiteAnalysis::compute(&world, &dataset);
    // Fig. 3: topsites are global-CDN-dominated, governments are not.
    let top_global = tops.topsites.urls[govhost::types::TopsiteCategory::Global.index()];
    let gov_global = tops.government.urls[govhost::types::TopsiteCategory::Global.index()];
    assert!(top_global > 0.6, "topsites global share {top_global} (paper 0.78)");
    assert!(gov_global < top_global, "governments below topsites on global CDNs");
    // Fig. 7: governments serve domestically far more than topsites.
    let gov_dom = tops.government_domestic.1.domestic_fraction();
    let top_dom = tops.topsites_domestic.1.domestic_fraction();
    assert!(gov_dom - top_dom > 0.15, "gov {gov_dom} vs topsites {top_dom} (paper 0.89 vs 0.49)");
}

#[test]
fn method_split_matches_section_4_2() {
    let (_world, dataset) = build();
    let total: u64 = dataset.method_counts.iter().sum();
    let tld = dataset.method_counts[0] as f64 / total as f64;
    let domain = dataset.method_counts[1] as f64 / total as f64;
    let san = dataset.method_counts[2] as f64 / total as f64;
    // Paper: 27.6% TLD, 72.1% domain matching, 0.3% SAN.
    assert!((0.15..=0.45).contains(&tld), "TLD share {tld} (paper 0.276)");
    assert!((0.50..=0.85).contains(&domain), "domain share {domain} (paper 0.721)");
    assert!(san < 0.02, "SAN share {san} (paper 0.003)");
    assert!(domain > tld, "domain matching dominates, as in §4.2");
}

#[test]
fn validation_stats_match_table_4_shape() {
    let (_world, dataset) = build();
    let u = dataset.validation.unicast_fractions();
    let a = dataset.validation.anycast_fractions();
    // Unicast: AP and MG both substantial, UR small.
    assert!((0.25..=0.60).contains(&u[0]), "unicast AP {:.2} (paper 0.41)", u[0]);
    assert!((0.35..=0.70).contains(&u[1]), "unicast MG {:.2} (paper 0.57)", u[1]);
    assert!(u[2] < 0.12, "unicast UR {:.2} (paper 0.02)", u[2]);
    // Anycast: AP-confirmed or excluded, never MG.
    assert!(a[0] > 0.7, "anycast AP {:.2} (paper 0.83)", a[0]);
    assert_eq!(a[1], 0.0, "anycast never confirms via MG (Table 4)");
    // Overall confirmation is high.
    assert!(dataset.validation.confirmation_rate() > 0.85);
}

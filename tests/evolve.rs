//! Longitudinal determinism: the yearly tick is a pure function of
//! `(world, year, seed)`, the evolved timeline is bit-identical at any
//! build thread count, and the incremental dirty-set rebuild exports
//! the same bytes as a from-scratch build of the same evolved world.
//!
//! The scale-0.3 pins are `#[ignore]`d for the default (debug) run and
//! executed by `ci.sh`'s release pass with `--include-ignored`.

use govhost::core::export::export_csv;
use govhost::prelude::*;
use govhost::worldgen::{default_systems, run_year};
use std::collections::BTreeSet;

fn options(threads: usize) -> BuildOptions {
    BuildOptions { threads, ..BuildOptions::default() }
}

#[test]
fn same_seed_ticks_are_bit_identical() {
    let params = GenParams::tiny();
    let systems = default_systems();
    let mut a = World::generate(&params);
    let mut b = World::generate(&params);
    for year in 1..=5 {
        let ra = run_year(&mut a, year, &systems);
        let rb = run_year(&mut b, year, &systems);
        assert_eq!(ra, rb, "year {year} tick reports diverge under the same seed");
        assert!(!ra.dirty.is_empty() || ra.events.is_empty(), "events imply dirty countries");
    }
    // The mutated worlds build to identical datasets as well.
    let da = GovDataset::build(&a, &options(1));
    let db = GovDataset::build(&b, &options(1));
    assert_eq!(export_csv(&da).hosts, export_csv(&db).hosts);
    assert_eq!(export_csv(&da).urls, export_csv(&db).urls);
}

#[test]
fn ten_year_timeline_is_identical_across_thread_counts() {
    let params = GenParams::tiny();
    let mut base_world = World::generate(&params);
    let base = govhost::core::evolve::evolve_with_systems(
        &mut base_world,
        10,
        &options(1),
        &default_systems(),
    )
    .expect("tiny world evolves");
    assert_eq!(base.timeline.years.len(), 11, "year 0 plus ten ticks");
    let base_csv = export_csv(&base.dataset);
    for threads in [2, 4] {
        let mut world = World::generate(&params);
        let other = govhost::core::evolve::evolve_with_systems(
            &mut world,
            10,
            &options(threads),
            &default_systems(),
        )
        .expect("tiny world evolves");
        assert_eq!(base.timeline, other.timeline, "threads={threads}");
        let csv = export_csv(&other.dataset);
        assert_eq!(base_csv.hosts, csv.hosts, "threads={threads}");
        assert_eq!(base_csv.urls, csv.urls, "threads={threads}");
        for (t1, t2) in base.ticks.iter().zip(&other.ticks) {
            assert_eq!(t1.dirty, t2.dirty, "threads={threads} year {}", t1.year);
            assert_eq!(t1.events, t2.events, "threads={threads} year {}", t1.year);
        }
    }
}

/// Run `years` ticks over one world, rebuilding incrementally after
/// each, and assert the export bytes match a from-scratch build of the
/// same evolved world every single year.
fn assert_incremental_matches_full(params: &GenParams, years: u32, threads: usize) {
    let options = options(threads);
    let mut world = World::generate(params);
    let (_, _, mut cache) =
        GovDataset::build_cached(&world, &options).expect("seed build succeeds");
    let systems = default_systems();
    for year in 1..=years {
        let report = run_year(&mut world, year, &systems);
        let (incremental, _) =
            GovDataset::rebuild_incremental(&world, &options, &mut cache, &report.dirty)
                .expect("incremental rebuild succeeds");
        let full = GovDataset::build(&world, &options);
        let inc_csv = export_csv(&incremental);
        let full_csv = export_csv(&full);
        assert_eq!(
            inc_csv.hosts, full_csv.hosts,
            "year {year}: hosts.csv diverges ({} dirty countries)",
            report.dirty.len()
        );
        assert_eq!(
            inc_csv.urls, full_csv.urls,
            "year {year}: urls.csv diverges ({} dirty countries)",
            report.dirty.len()
        );
    }
}

#[test]
fn incremental_rebuild_matches_full_build_bytes() {
    assert_incremental_matches_full(&GenParams::tiny(), 4, 1);
}

#[test]
fn empty_dirty_set_replays_the_cache_exactly() {
    let world = World::generate(&GenParams::tiny());
    let options = options(1);
    let (dataset, _, mut cache) =
        GovDataset::build_cached(&world, &options).expect("seed build succeeds");
    let (replayed, _) =
        GovDataset::rebuild_incremental(&world, &options, &mut cache, &BTreeSet::new())
            .expect("replay succeeds");
    assert_eq!(export_csv(&dataset).hosts, export_csv(&replayed).hosts);
    assert_eq!(export_csv(&dataset).urls, export_csv(&replayed).urls);
}

// Release-only pins at the paper's working scale, run by ci.sh with
// `--include-ignored`: too slow for the default debug test pass.

#[test]
#[ignore = "scale-0.3 pin; run in release via ci.sh"]
fn incremental_rebuild_is_bit_identical_at_scale() {
    let params = GenParams { scale: 0.3, ..GenParams::default() };
    assert_incremental_matches_full(&params, 3, 4);
}

#[test]
#[ignore = "scale-0.3 pin; run in release via ci.sh"]
fn evolved_exports_are_identical_across_thread_counts_at_scale() {
    let params = GenParams { scale: 0.3, ..GenParams::default() };
    let mut base_world = World::generate(&params);
    let base = govhost::core::evolve::evolve_with_systems(
        &mut base_world,
        3,
        &options(1),
        &default_systems(),
    )
    .expect("world evolves at scale");
    let base_csv = export_csv(&base.dataset);
    for threads in [2, 4] {
        let mut world = World::generate(&params);
        let other = govhost::core::evolve::evolve_with_systems(
            &mut world,
            3,
            &options(threads),
            &default_systems(),
        )
        .expect("world evolves at scale");
        assert_eq!(base.timeline, other.timeline, "threads={threads}");
        let csv = export_csv(&other.dataset);
        assert_eq!(base_csv.hosts, csv.hosts, "threads={threads}");
        assert_eq!(base_csv.urls, csv.urls, "threads={threads}");
    }
}

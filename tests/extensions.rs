//! Integration tests for the extension features: dataset export/import,
//! the longitudinal trends run, HAR export of real crawls, zone-file
//! round trips of generated zones, and the affordability lens.

use govhost::core::affordability::AffordabilityAnalysis;
use govhost::core::export::{export_csv, import_csv};
use govhost::core::trends::TrendAnalysis;
use govhost::prelude::*;
use govhost::web::crawler::Crawler;

fn build() -> (World, GovDataset) {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    (world, dataset)
}

#[test]
fn exported_dataset_reproduces_every_analysis() {
    let (_world, dataset) = build();
    let loaded = import_csv(&export_csv(&dataset)).expect("round trip");

    let h1 = HostingAnalysis::compute(&dataset);
    let h2 = HostingAnalysis::compute(&loaded);
    assert_eq!(h1.global, h2.global);
    assert_eq!(h1.per_region.len(), h2.per_region.len());

    let c1 = CrossBorderAnalysis::compute(&dataset);
    let c2 = CrossBorderAnalysis::compute(&loaded);
    assert_eq!(c1.location.total(), c2.location.total());
    assert_eq!(c1.registration.flows, c2.registration.flows);

    let p1 = ProviderAnalysis::compute(&dataset);
    let p2 = ProviderAnalysis::compute(&loaded);
    assert_eq!(p1.histogram(), p2.histogram());

    let a1 = AffordabilityAnalysis::compute(&dataset);
    let a2 = AffordabilityAnalysis::compute(&loaded);
    assert_eq!(a1.per_country.len(), a2.per_country.len());
}

#[test]
fn longitudinal_run_shows_consolidation() {
    let steps: Vec<(String, f64)> =
        [0.0, 0.25].iter().map(|d| (format!("t{d}"), *d)).collect();
    let trend = TrendAnalysis::run(&GenParams::tiny(), &steps, &BuildOptions::default());
    assert!(trend.consolidation_is_monotone());
    assert!(trend.third_party_delta() > 0.03);
    // Domestic serving erodes alongside.
    assert!(
        trend.snapshots[1].domestic_serving <= trend.snapshots[0].domestic_serving + 0.02
    );
}

#[test]
fn har_export_round_trips_a_real_crawl() {
    let (world, _) = build();
    let ar: CountryCode = "AR".parse().unwrap();
    let landing = &world.landing(ar)[0];
    let outcome = Crawler::default().crawl(&world.corpus, landing, Some(ar));
    assert!(!outcome.log.entries.is_empty());
    let json = govhost::web::to_har_json(&outcome.log);
    let parsed = govhost::web::read_har_entries(&json);
    assert_eq!(parsed.len(), outcome.log.entries.len());
    let total_bytes: u64 = parsed.iter().map(|(_, b, _)| b).sum();
    assert_eq!(total_bytes, outcome.log.total_bytes());
}

#[test]
fn generated_hostnames_survive_zone_file_round_trip() {
    let (world, dataset) = build();
    // Serialize a synthetic zone per resolved host and re-parse it.
    let mut checked = 0;
    for host in dataset.hosts.iter().take(50) {
        let Some(ip) = host.ip else { continue };
        let apex = govhost::dns::DnsName::from(&host.hostname);
        let mut zone = govhost::dns::Zone::new(apex.clone());
        zone.add(apex, govhost::dns::RData::A(ip));
        let text = govhost::dns::to_zone_file(&zone, 300);
        let parsed = govhost::dns::parse_zone_file(&text, None).expect("round trip");
        assert_eq!(parsed.origin().to_string(), host.hostname.as_str());
        checked += 1;
    }
    assert!(checked > 30);
    drop(world);
}

#[test]
fn iterative_resolver_agrees_with_catalog_resolver_on_a_hierarchy() {
    // Build the same data both ways and compare resolutions.
    use govhost::dns::{
        AuthoritativeServer, DelegatingServer, DnsName, IterativeResolver, RData, Resolver, Zone,
    };
    let n = |s: &str| -> DnsName { s.parse().unwrap() };

    let mut gov_zone = Zone::new(n("tesoro.gob.ar"));
    gov_zone.add(n("www.tesoro.gob.ar"), RData::A("11.5.0.9".parse().unwrap()));

    // Catalog resolver.
    let mut catalog = Resolver::new();
    catalog.add_server(AuthoritativeServer::new(gov_zone.clone()));

    // Full delegation tree.
    let mut iterative = IterativeResolver::new();
    let mut root = DelegatingServer::new(Zone::new(DnsName::root()));
    root.delegate(n("ar"), n("ns.nic.ar"), "10.0.0.2".parse().unwrap());
    iterative.add_server("10.0.0.1".parse().unwrap(), root);
    let mut ar_tld = DelegatingServer::new(Zone::new(n("ar")));
    ar_tld.delegate(n("tesoro.gob.ar"), n("ns1.tesoro.gob.ar"), "10.0.0.3".parse().unwrap());
    iterative.add_server("10.0.0.2".parse().unwrap(), ar_tld);
    iterative.add_server("10.0.0.3".parse().unwrap(), DelegatingServer::new(gov_zone));

    let name = n("www.tesoro.gob.ar");
    let a = catalog.resolve(&name, None).expect("catalog resolves");
    let b = iterative.resolve(&name, None).expect("iterative resolves");
    assert_eq!(a.addresses, b.addresses);
    assert_eq!(a.chain, b.chain);
}

#[test]
fn affordability_burden_double_penalty_holds_end_to_end() {
    let (_world, dataset) = build();
    let afford = AffordabilityAnalysis::compute(&dataset);
    assert!(afford.burden_income_correlation() < -0.3);
    // The worst-burdened countries are not rich ones.
    for (code, _) in afford.worst(3) {
        let row = govhost::worldgen::countries::country(code).unwrap();
        assert!(row.gdp_k < 30.0, "{code} should not top the burden list");
    }
}

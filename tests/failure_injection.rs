//! Failure injection: the pipeline must degrade gracefully, not collapse,
//! when the measurement environment turns hostile — the situations §8
//! lists as limitations.

use govhost::geoloc::pipeline::PipelineConfig;
use govhost::prelude::*;

#[test]
fn heavy_geodb_corruption_shrinks_confirmations_not_correctness() {
    let clean = World::generate(&GenParams::tiny());
    let dirty = World::generate(&GenParams { geodb_error_rate: 0.4, ..GenParams::tiny() });
    let d_clean = GovDataset::build(&clean, &BuildOptions::default());
    let d_dirty = GovDataset::build(&dirty, &BuildOptions::default());

    let conf_clean = d_clean.validation.confirmation_rate();
    let conf_dirty = d_dirty.validation.confirmation_rate();
    assert!(
        conf_dirty < conf_clean,
        "corrupting the database must cost confirmations: {conf_dirty} !< {conf_clean}"
    );

    // But what *is* confirmed stays accurate.
    let mut agree = 0;
    let mut total = 0;
    for h in &d_dirty.hosts {
        let (Some(truth), Some(got)) = (dirty.truth.host(&h.hostname), h.server_country)
        else {
            continue;
        };
        total += 1;
        if got == truth.location {
            agree += 1;
        }
    }
    assert!(total > 50);
    assert!(
        agree as f64 / total as f64 > 0.9,
        "confirmed locations stay accurate under corruption: {agree}/{total}"
    );
}

#[test]
fn anycast_detector_blindness_floods_unicast_lane() {
    // With the MAnycast2 snapshot missing everything, anycast addresses
    // are treated as unicast; the pipeline must still terminate and the
    // anycast lane of Table 4 goes quiet.
    let world = World::generate(&GenParams { anycast_false_negative: 1.0, ..GenParams::tiny() });
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let anycast_total: usize = dataset.validation.anycast.iter().sum();
    assert_eq!(anycast_total, 0, "nothing flagged anycast when the detector is blind");
    assert!(dataset.urls.len() > 1000, "pipeline still produces a dataset");
}

#[test]
fn disabling_all_geolocation_stages_excludes_everything() {
    let world = World::generate(&GenParams::tiny());
    let options = BuildOptions {
        geo: PipelineConfig {
            use_active_probing: false,
            use_hoiho: false,
            use_ipmap: false,
            use_single_radius: false,
            ..PipelineConfig::default()
        },
        ..BuildOptions::default()
    };
    let dataset = GovDataset::build(&world, &options);
    assert!(
        dataset.hosts.iter().all(|h| h.server_country.is_none()),
        "no stage, no validated location — the conservative policy"
    );
    // Location analysis over an all-excluded dataset is empty, not wrong.
    let location = LocationAnalysis::compute(&dataset);
    assert_eq!(location.geolocation.total, 0);
    assert!(location.geolocation.domestic_fraction().is_nan());
    // WHOIS lens is unaffected.
    assert!(location.registration.total > 0);
}

#[test]
fn korea_empty_row_is_handled_everywhere() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let kr: CountryCode = "KR".parse().unwrap();
    assert!(world.landing(kr).is_empty());
    assert_eq!(dataset.country_urls(kr).count(), 0);
    let hosting = HostingAnalysis::compute(&dataset);
    assert!(!hosting.per_country.contains_key(&kr));
    // Clustering and the explanatory model simply skip it.
    let sim = SimilarityAnalysis::compute(
        &hosting,
        govhost::core::similarity::SignatureKind::Urls,
    );
    assert!(!sim.countries.contains(&kr));
    let location = LocationAnalysis::compute(&dataset);
    assert!(location.offshore_percent(kr).is_none());
    assert!(ExplanatoryModel::fit(&location).is_some(), "model fits without Korea");
}

#[test]
fn crawler_depth_ablation_matches_coverage_claim() {
    // §4.2: 84% of URLs come from landing pages, 95% within one level.
    // Sweeping the crawl depth must show steeply diminishing returns.
    let world = World::generate(&GenParams::tiny());
    let mut last = 0usize;
    let mut counts = Vec::new();
    for depth in [0u32, 1, 3, 7] {
        let options = BuildOptions {
            crawler: govhost::web::crawler::Crawler::with_depth(depth),
            ..BuildOptions::default()
        };
        let dataset = GovDataset::build(&world, &options);
        assert!(dataset.urls.len() >= last, "URL count grows with depth");
        last = dataset.urls.len();
        counts.push((depth, dataset.urls.len()));
    }
    let at0 = counts[0].1 as f64;
    let at1 = counts[1].1 as f64;
    let at7 = counts[3].1 as f64;
    // At tiny scale the per-site page skeleton (7 HTML pages) dilutes the
    // 84% landing-page resource share; the claim converges at full scale.
    assert!(at0 / at7 > 0.62, "landing pages dominate: {at0}/{at7} (paper: 84%)");
    assert!(at1 / at7 > 0.85, "one more level nearly saturates: {at1}/{at7} (paper: 95%)");
}

#[test]
fn crawl_failures_are_counted_not_fatal() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    // Geo-blocked pages fetched from the right vantage succeed, so
    // failures should be rare but the counter must exist and not explode.
    assert!(
        (dataset.crawl_failures as usize) < dataset.urls.len(),
        "failures ({}) bounded",
        dataset.crawl_failures
    );
}

/// Make every landing site of `country` unreachable from its own vantage
/// by geo-restricting it to a foreign country — the domestic landing
/// fetch then fails with a geo-block, a crawl-stage fault.
fn poison_country(world: &mut World, country: CountryCode) {
    let foreign: CountryCode =
        if country.as_str() == "US" { "DE" } else { "US" }.parse().unwrap();
    let landing: Vec<govhost::types::Url> = world.landing(country).to_vec();
    assert!(!landing.is_empty(), "{country} has landing pages to poison");
    for url in &landing {
        world
            .corpus
            .site_mut(url.hostname())
            .expect("landing site exists in the corpus")
            .geo_restricted_to = Some(foreign);
    }
}

#[test]
fn abort_policy_surfaces_poisoned_country_as_typed_error() {
    let mut world = World::generate(&GenParams::tiny());
    let br: CountryCode = "BR".parse().unwrap();
    poison_country(&mut world, br);
    let err = GovDataset::try_build(&world, &BuildOptions::default())
        .expect_err("abort policy stops at the fault");
    assert_eq!(err.country, br);
    assert_eq!(err.error.stage(), govhost::types::PipelineStage::Crawl);
    assert!(err.to_string().contains("BR"), "{err}");
}

#[test]
fn quarantine_drops_poisoned_country_but_builds_the_rest() {
    let clean = GovDataset::build(&World::generate(&GenParams::tiny()), &BuildOptions::default());
    let mut world = World::generate(&GenParams::tiny());
    let br: CountryCode = "BR".parse().unwrap();
    poison_country(&mut world, br);

    let options = BuildOptions { policy: FailurePolicy::Quarantine, ..BuildOptions::default() };
    let (ds, report) =
        GovDataset::try_build(&world, &options).expect("quarantine absorbs the fault");

    // The report names the country and the stage that faulted.
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.country, br);
    assert_eq!(q.stage, govhost::types::PipelineStage::Crawl);
    assert!(q.cause.contains("geo-blocked") || q.cause.contains("blocked"), "{}", q.cause);

    // One poisoned country never takes the others down with it.
    assert!(!ds.per_country.contains_key(&br));
    assert_eq!(ds.countries().len(), clean.countries().len() - 1);
    assert_eq!(ds.country_urls(br).count(), 0);
    assert!(ds.urls.len() > 1000, "the surviving countries still produce a dataset");
}

#[test]
fn zero_scale_world_is_empty_but_valid() {
    let world = World::generate(&GenParams { scale: 0.0, ..GenParams::default() });
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    // scale 0 rounds every per-country volume to the minimum floor via
    // `scaled`, except countries whose raw value is 0. Nothing crashes.
    let hosting = HostingAnalysis::compute(&dataset);
    let _ = hosting.global_country_mean();
    let _ = LocationAnalysis::compute(&dataset);
    let _ = CrossBorderAnalysis::compute(&dataset);
}

//! Hermeticity checks: the quickstart flow from `src/lib.rs` runs with no
//! network and no external crates, and the whole pipeline is a pure
//! function of the generation seed — same seed, byte-identical exports.

use govhost::core::export::export_csv;
use govhost::prelude::*;

fn export_for(seed: u64) -> (String, String) {
    let params = GenParams { seed, ..GenParams::tiny() };
    let world = World::generate(&params);
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let csv = export_csv(&dataset);
    (csv.hosts, csv.urls)
}

#[test]
fn quickstart_flow_runs() {
    let params = GenParams::tiny();
    let world = World::generate(&params);
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let hosting = HostingAnalysis::compute(&dataset);
    assert!(hosting.global.third_party_urls() > 0.0);
    assert!(!dataset.hosts.is_empty());
    assert!(!dataset.urls.is_empty());
}

#[test]
fn same_seed_gives_byte_identical_exports() {
    let (hosts_a, urls_a) = export_for(1234);
    let (hosts_b, urls_b) = export_for(1234);
    assert_eq!(hosts_a, hosts_b, "hosts.csv must be reproducible byte-for-byte");
    assert_eq!(urls_a, urls_b, "urls.csv must be reproducible byte-for-byte");
}

#[test]
fn different_seeds_give_different_worlds() {
    let (hosts_a, urls_a) = export_for(1234);
    let (hosts_b, urls_b) = export_for(4321);
    assert!(
        hosts_a != hosts_b || urls_a != urls_b,
        "distinct seeds must produce distinct datasets"
    );
}

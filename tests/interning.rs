//! Determinism contract of the interned, work-stealing build at full
//! paper scale: every observable byte of the dataset — the columnar URL
//! table, the CSV export, and the deterministic telemetry documents —
//! must be identical for 1, 2, 4, and 8 worker threads. The
//! work-stealing deque makes scheduling *maximally* nondeterministic, so
//! bit-identity here proves the merge path, not the scheduler, decides
//! every output byte.
//!
//! The scale-1 world takes minutes to build in debug mode, so the test
//! is `#[ignore]`d by default; `ci.sh` runs it in release with
//! `--include-ignored`.

use govhost::obs::export::{metrics_json, trace_json, TimeMode};
use govhost::prelude::*;

#[test]
#[ignore = "scale-1 world: run in release via ci.sh"]
fn interned_build_is_bit_identical_across_thread_counts_at_scale_1() {
    let world = World::generate(&GenParams { scale: 1.0, ..GenParams::default() });
    let base = GovDataset::build(&world, &BuildOptions { threads: 1, ..Default::default() });
    assert!(base.urls.len() > 500_000, "scale 1 approximates the paper's ~1M URLs");
    let base_csv = export_csv(&base);
    let base_metrics = metrics_json(&base.telemetry);
    let base_trace = trace_json(&base.telemetry, TimeMode::Deterministic);

    for threads in [2usize, 4, 8] {
        let ds = GovDataset::build(&world, &BuildOptions { threads, ..Default::default() });
        // The columnar table itself: row order, interned ids, path bytes.
        assert_eq!(ds.urls, base.urls, "URL table differs at threads={threads}");
        // Host arena order via the records and the id round trip.
        assert_eq!(ds.hosts.len(), base.hosts.len(), "threads={threads}");
        for (a, b) in base.hosts.iter().zip(&ds.hosts) {
            assert_eq!(a.hostname, b.hostname, "host arena order at threads={threads}");
        }
        // Every exported byte.
        let csv = export_csv(&ds);
        assert_eq!(csv.hosts, base_csv.hosts, "hosts.csv differs at threads={threads}");
        assert_eq!(csv.urls, base_csv.urls, "urls.csv differs at threads={threads}");
        assert_eq!(csv.meta, base_csv.meta, "meta.csv differs at threads={threads}");
        // And the telemetry documents, stolen work included.
        assert_eq!(
            metrics_json(&ds.telemetry),
            base_metrics,
            "metrics.json differs at threads={threads}"
        );
        assert_eq!(
            trace_json(&ds.telemetry, TimeMode::Deterministic),
            base_trace,
            "trace.json differs at threads={threads}"
        );
    }
}

//! Oracle tests: the measurement pipeline sees only observable surfaces
//! (crawls, DNS, WHOIS, PeeringDB, search, probes); the generator's
//! ground truth says what it *should* have recovered. These tests bound
//! the pipeline's recovery error.

use govhost::prelude::*;
use govhost::types::ProviderCategory;

fn build() -> (World, GovDataset) {
    let world = World::generate(&GenParams { scale: 0.05, ..GenParams::default() });
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    (world, dataset)
}

#[test]
fn classification_finds_nearly_all_government_hostnames() {
    let (world, dataset) = build();
    // Recall: every ground-truth hostname with URL weight should appear.
    let mut found = 0;
    let mut missed = Vec::new();
    for host in world.truth.hosts.keys() {
        if dataset.host_id(host).is_some() {
            found += 1;
        } else {
            missed.push(host.clone());
        }
    }
    let total = world.truth.hosts.len();
    let recall = found as f64 / total as f64;
    assert!(
        recall > 0.9,
        "recall {recall} ({found}/{total}); first misses: {:?}",
        &missed[..missed.len().min(5)]
    );
}

#[test]
fn classification_admits_no_non_government_hostnames() {
    let (world, dataset) = build();
    // Precision against ground truth: every dataset hostname must be a
    // truth hostname (trackers and contractor sites are not).
    for h in &dataset.hosts {
        assert!(
            world.truth.host(&h.hostname).is_some(),
            "{} classified as government but is not",
            h.hostname
        );
    }
}

#[test]
fn category_recovery_is_accurate() {
    let (world, dataset) = build();
    let mut confusion: std::collections::HashMap<(ProviderCategory, ProviderCategory), usize> =
        std::collections::HashMap::new();
    let mut agree = 0;
    let mut total = 0;
    for h in &dataset.hosts {
        let (Some(truth), Some(got)) = (world.truth.host(&h.hostname), h.category) else {
            continue;
        };
        total += 1;
        if got == truth.category {
            agree += 1;
        } else {
            *confusion.entry((truth.category, got)).or_default() += 1;
        }
    }
    let accuracy = agree as f64 / total as f64;
    assert!(accuracy > 0.85, "category accuracy {accuracy}; confusion: {confusion:?}");
}

#[test]
fn state_classifier_has_high_precision_and_recall() {
    let (world, dataset) = build();
    let (mut tp, mut fp, mut fnv) = (0u32, 0u32, 0u32);
    for h in &dataset.hosts {
        let Some(truth) = world.truth.host(&h.hostname) else { continue };
        let truth_state = truth.category == ProviderCategory::GovtSoe;
        match (truth_state, h.state_operated) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fnv += 1,
            (false, false) => {}
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fnv).max(1) as f64;
    assert!(precision > 0.9, "state precision {precision} (tp {tp}, fp {fp})");
    assert!(recall > 0.8, "state recall {recall} (tp {tp}, fn {fnv})");
}

#[test]
fn validated_locations_agree_with_truth() {
    let (world, dataset) = build();
    let mut agree = 0;
    let mut total = 0;
    for h in &dataset.hosts {
        let (Some(truth), Some(got)) = (world.truth.host(&h.hostname), h.server_country)
        else {
            continue;
        };
        total += 1;
        if got == truth.location {
            agree += 1;
        }
    }
    assert!(total > 100, "enough validated hosts: {total}");
    let accuracy = agree as f64 / total as f64;
    assert!(
        accuracy > 0.93,
        "validated locations are trustworthy (the point of §3.5): {accuracy}"
    );
}

#[test]
fn san_only_hosts_recovered_via_san_method() {
    let (world, dataset) = build();
    let mut san_truth = 0;
    let mut san_found = 0;
    for (host, truth) in &world.truth.hosts {
        if !truth.san_only {
            continue;
        }
        san_truth += 1;
        if let Some(id) = dataset.host_id(host) {
            let rec = dataset.host(id);
            assert_eq!(
                rec.method,
                govhost::core::classify::ClassificationMethod::San,
                "{host} must be identified through SANs"
            );
            san_found += 1;
        }
    }
    assert!(san_truth > 30, "SAN-only affiliates exist in the world: {san_truth}");
    assert!(
        san_found as f64 / san_truth as f64 > 0.8,
        "most SAN affiliates recovered: {san_found}/{san_truth}"
    );
}

#[test]
fn france_new_caledonia_case_recovered() {
    let (world, dataset) = build();
    let gouv_nc: Hostname = "gouv.nc".parse().unwrap();
    assert!(world.truth.host(&gouv_nc).is_some());
    let id = dataset.host_id(&gouv_nc).expect("gouv.nc classified");
    let rec = dataset.host(id);
    assert_eq!(rec.country.as_str(), "FR", "collected through France's crawl");
    assert_eq!(rec.category, Some(ProviderCategory::GovtSoe), "OPT is state-owned");
    assert_eq!(rec.registration.map(|c| c.to_string()).as_deref(), Some("NC"));
    assert!(rec.state_operated, "the search evidence reveals OPT's state ownership");
}

#[test]
fn quarantine_counts_and_export_bytes_are_thread_count_invariant() {
    // Poison two countries so the quarantine list has an order to get
    // wrong; every thread count must produce the identical report and
    // identical export bytes (the determinism contract extends to the
    // fault-tolerant path).
    let mut world = World::generate(&GenParams::tiny());
    for code in ["AR", "DE"] {
        let country: CountryCode = code.parse().unwrap();
        let landing: Vec<govhost::types::Url> = world.landing(country).to_vec();
        assert!(!landing.is_empty());
        for url in &landing {
            world.corpus.site_mut(url.hostname()).unwrap().geo_restricted_to =
                Some("US".parse().unwrap());
        }
    }

    let build = |threads: usize| {
        let options = BuildOptions {
            threads,
            policy: FailurePolicy::Quarantine,
            ..BuildOptions::default()
        };
        GovDataset::try_build(&world, &options).expect("quarantine absorbs the faults")
    };
    let (base_ds, base_report) = build(1);
    assert_eq!(base_report.quarantined.len(), 2);
    // Fixed country order, independent of which worker hit the fault first.
    let quarantined: Vec<&str> =
        base_report.quarantined.iter().map(|q| q.country.as_str()).collect();
    assert_eq!(quarantined, ["AR", "DE"]);
    let base_csv = export_csv_full(&base_ds, Some(&base_report));

    for threads in [2, 8] {
        let (ds, report) = build(threads);
        assert_eq!(report, base_report, "report counts identical at threads={threads}");
        let csv = export_csv_full(&ds, Some(&report));
        assert_eq!(csv.hosts, base_csv.hosts, "threads={threads}");
        assert_eq!(csv.urls, base_csv.urls, "threads={threads}");
        assert_eq!(csv.meta, base_csv.meta, "threads={threads}");
    }

    // The report survives an export/import round trip byte-for-byte.
    let (_, imported_report) = import_csv_full(&base_csv).expect("imports");
    assert_eq!(imported_report, base_report);
}

#[test]
fn geo_restricted_sites_require_domestic_vantage() {
    let (world, _) = build();
    // Find a geo-restricted site and verify the corpus refuses foreign
    // fetches (the reason the paper uses VPNs).
    let site = world
        .corpus
        .sites()
        .find(|s| s.geo_restricted_to.is_some())
        .expect("geo-restricted sites exist");
    let home = site.geo_restricted_to.unwrap();
    let foreign: CountryCode = if home.as_str() == "US" { "DE" } else { "US" }.parse().unwrap();
    assert!(world.corpus.fetch(&site.landing, Some(home)).is_ok());
    assert!(world.corpus.fetch(&site.landing, Some(foreign)).is_err());
    assert!(world.corpus.fetch(&site.landing, None).is_err());
}

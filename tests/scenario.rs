//! The what-if engine's determinism and acceptance contract, pinned at
//! integration level:
//!
//! * a scenario with **no shocks** rebuilds to the exact bytes of the
//!   baseline export, at every build thread count — applying nothing
//!   changes nothing;
//! * `diff(m, m)` is all-zero with every row a tie and **zero**
//!   insights — the comparison layer never invents a finding;
//! * a provider outage reports per-country dark fractions that include
//!   the shared-NS cascade: some country is dark *only* because its
//!   nameservers died with the provider (NS-only exposure), and that
//!   exposure is bounded by the country's total dark share;
//! * the `/scenario/{name}` and `/scenario/{name}/diff` responses are
//!   byte-identical whether the runs were built with 1, 2, or 4
//!   threads.

use govhost::obs::TimeMode;
use govhost::prelude::*;
use govhost::core::export::export_csv;
use govhost::scenario::{
    diff, insights_for, parse, run_file, run_scenario, BuildMetrics, InsightContext,
    ScenarioRun, Winner,
};
use govhost::serve::{serve_connection, Limits, MemConn, ScenarioIndex, ServeState};

fn options(threads: usize) -> BuildOptions {
    BuildOptions { threads, ..BuildOptions::default() }
}

#[test]
fn empty_scenario_rebuilds_byte_identical_to_baseline() {
    let params = GenParams::tiny();
    let file = parse("scenario noop\n").expect("a shockless scenario parses");
    let base = run_scenario(&params, &file.scenarios[0], &options(1)).expect("runs");
    assert!(base.events.is_empty(), "no shocks, no events");
    assert!(base.dirty.is_empty(), "no shocks, no dirty countries");
    assert!(base.darkened.is_empty(), "no shocks, no darkened hosts");
    let baseline_csv = export_csv(&base.baseline);
    let shocked_csv = export_csv(&base.shocked);
    assert_eq!(baseline_csv.hosts, shocked_csv.hosts, "hosts export unchanged");
    assert_eq!(baseline_csv.urls, shocked_csv.urls, "urls export unchanged");
    for threads in [2usize, 4] {
        let run = run_scenario(&params, &file.scenarios[0], &options(threads)).expect("runs");
        let csv = export_csv(&run.shocked);
        assert_eq!(csv.hosts, shocked_csv.hosts, "threads={threads}");
        assert_eq!(csv.urls, shocked_csv.urls, "threads={threads}");
    }
}

#[test]
fn self_diff_is_all_zero_ties_with_zero_insights() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let m = BuildMetrics::measure(&dataset);
    let d = diff(&m, &m);
    assert!(!d.global.is_empty(), "global rows exist");
    assert!(!d.countries.is_empty(), "country rows exist");
    let rows = d.global.iter().chain(d.countries.iter().flat_map(|c| c.rows.iter()));
    for r in rows {
        assert_eq!(r.delta, 0.0, "zero delta: {}", r.label);
        assert_eq!(r.diff_pct, 0.0, "zero diff%: {}", r.label);
        assert_eq!(r.winner, Winner::Tie, "every row ties: {}", r.label);
    }
    assert!(
        insights_for(&d, &InsightContext::default()).is_empty(),
        "a self-diff yields no insights"
    );
}

/// The managed-DNS operators the generator hangs authoritative NS
/// records under; one of them must exhibit the shared-NS cascade even
/// at tiny scale.
const DNS_OPERATORS: [u32; 3] = [13335, 16509, 8075];

#[test]
fn provider_outage_reports_ns_only_cascade_dark_fractions() {
    let params = GenParams::tiny();
    let mut cascade_seen = false;
    for asn in DNS_OPERATORS {
        let file = parse(&format!("scenario s\noutage provider AS{asn}\n")).expect("parses");
        let run = run_scenario(&params, &file.scenarios[0], &options(1)).expect("runs");
        for (cc, ns_only) in &run.ns_only_percent {
            if *ns_only <= 0.0 {
                continue;
            }
            cascade_seen = true;
            let dark = run
                .shocked_metrics
                .countries
                .get(cc)
                .expect("darkened country is measured")
                .dark_percent;
            assert!(dark > 0.0, "NS-only exposure implies a nonzero dark fraction: {cc}");
            assert!(
                dark + 1e-9 >= *ns_only,
                "NS-only share is part of the dark share: {cc} ({ns_only} vs {dark})"
            );
        }
    }
    assert!(cascade_seen, "some operator outage must show NS-only exposure at tiny scale");
}

/// Serve the two scenario routes for every run over an in-process
/// connection and return the raw response bytes.
fn scenario_responses(runs: &[ScenarioRun]) -> Vec<Vec<u8>> {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let index = ScenarioIndex::build(runs);
    let state = ServeState::with_mode(&dataset, TimeMode::Deterministic).with_scenarios(index);
    let mut out = Vec::new();
    for run in runs {
        for route in [format!("/scenario/{}", run.name), format!("/scenario/{}/diff", run.name)]
        {
            let raw = format!("GET {route} HTTP/1.1\r\nConnection: close\r\n\r\n");
            let mut conn = MemConn::new(raw.into_bytes());
            serve_connection(&state, &mut conn, &Limits::default(), || false).expect("serves");
            assert!(
                conn.output().starts_with(b"HTTP/1.1 200 OK"),
                "{route} answers 200"
            );
            out.push(conn.output().to_vec());
        }
    }
    out
}

#[test]
fn scenario_routes_are_byte_identical_across_build_thread_counts() {
    let params = GenParams::tiny();
    let file = parse(
        "scenario quake\noutage provider AS13335\n\nscenario shore\nonshore *\n",
    )
    .expect("parses");
    let base_runs = run_file(&params, &file, &options(1)).expect("runs");
    let base = scenario_responses(&base_runs);
    assert_eq!(base.len(), 4, "two scenarios, two routes each");
    for threads in [2usize, 4] {
        let runs = run_file(&params, &file, &options(threads)).expect("runs");
        let other = scenario_responses(&runs);
        assert_eq!(base, other, "scenario response bytes pinned at threads={threads}");
    }
}

//! The serving determinism contract, pinned at integration level: for a
//! fixed world and a fixed request sequence, every response the server
//! produces — including the `/metrics` exposition — must be
//! **byte-identical** whether the dataset was built and served with 1,
//! 2, or 4 threads. The requests run through the real worker [`Pool`]
//! over in-process connections; a separate smoke test exercises the
//! actual TCP path and skips cleanly where sockets are unavailable.

use govhost::obs::TimeMode;
use govhost::prelude::*;
use govhost::serve::{Limits, MemConn, Pool, ServeState, Server, ServerConfig};
use std::io::{Read as _, Write as _};
use std::sync::Arc;

/// Every route the server exposes, in a fixed request order. `/metrics`
/// goes last so its body reflects the whole (deterministic) sequence,
/// and an unknown path rides along to pin the 404 bytes too.
fn request_sequence(dataset: &GovDataset) -> Vec<String> {
    let country = dataset.countries()[0];
    vec![
        "/healthz".to_string(),
        "/countries".to_string(),
        format!("/country/{country}"),
        "/flows".to_string(),
        "/providers".to_string(),
        "/hhi".to_string(),
        "/nope".to_string(),
        "/metrics".to_string(),
    ]
}

/// Build at `threads`, serve through a `threads`-worker pool, and
/// collect the full response bytes of the fixed request sequence,
/// issued by a single sequential client.
fn responses_at(world: &World, threads: usize) -> Vec<Vec<u8>> {
    let dataset = GovDataset::build(world, &BuildOptions { threads, ..Default::default() });
    let routes = request_sequence(&dataset);
    let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
    let pool = Pool::start(state, threads, Limits::default());
    let mut responses = Vec::new();
    for route in &routes {
        let raw = format!("GET {route} HTTP/1.1\r\nConnection: close\r\n\r\n");
        let (conn, rx) = MemConn::scripted(raw.into_bytes());
        assert!(pool.submit(Box::new(conn)), "pool accepts while running");
        responses.push(rx.recv().expect("connection was served"));
    }
    pool.shutdown();
    responses
}

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    let world = World::generate(&GenParams::tiny());
    let routes_for_messages = {
        let ds = GovDataset::build(&world, &BuildOptions::default());
        request_sequence(&ds)
    };
    let baseline = responses_at(&world, 1);
    for threads in [2, 4] {
        let got = responses_at(&world, threads);
        assert_eq!(baseline.len(), got.len());
        for ((route, base), other) in routes_for_messages.iter().zip(&baseline).zip(&got) {
            assert_eq!(
                base, other,
                "{route} response differs between threads=1 and threads={threads}"
            );
        }
    }
    // Sanity: the pinned bytes are real answers, not empty shells.
    for (route, response) in routes_for_messages.iter().zip(&baseline) {
        let text = String::from_utf8_lossy(response);
        let expected = if route == "/nope" { "HTTP/1.1 404" } else { "HTTP/1.1 200" };
        assert!(text.starts_with(expected), "{route}: {text}");
    }
    let metrics = String::from_utf8_lossy(baseline.last().expect("metrics response"));
    assert!(metrics.contains("http_requests{route=\"/hhi\"} 1"), "{metrics}");
    assert!(metrics.contains("http_requests{route=\"other\"} 1"), "{metrics}");
    assert!(metrics.contains("# TYPE http_latency_ns histogram"), "{metrics}");
}

#[test]
fn repeated_runs_produce_the_same_bytes() {
    let world = World::generate(&GenParams::tiny());
    assert_eq!(responses_at(&world, 2), responses_at(&world, 2));
}

/// Drive the server over a real loopback socket: bind an ephemeral
/// port, send a pipelined pair of requests, read both answers back.
/// Environments without socket support skip cleanly instead of failing.
#[test]
fn loopback_smoke_answers_real_sockets() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
    let config = ServerConfig { threads: 2, ..ServerConfig::default() };
    let server = match Server::bind(state, "127.0.0.1:0", config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("skipping loopback smoke test: cannot bind a loopback socket ({e})");
            return;
        }
    };
    let mut stream = match std::net::TcpStream::connect(server.local_addr()) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("skipping loopback smoke test: cannot connect over loopback ({e})");
            server.shutdown();
            return;
        }
    };
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\n\r\n\
              GET /countries HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .expect("write requests");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read responses");
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    assert!(text.contains("Connection: keep-alive"), "{text}");
    assert!(text.ends_with('}') || text.ends_with(']'), "JSON body last: {text}");
    server.shutdown();
}

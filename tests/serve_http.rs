//! The serving determinism contract, pinned at integration level: for a
//! fixed world and a fixed request sequence, every response the server
//! produces — including `If-None-Match` 304 revalidations, every ETag
//! header, and the `/metrics` exposition — must be **byte-identical**
//! whether the dataset was built and served with 1, 2, or 4 event-loop
//! workers. The requests run through the real worker [`Pool`] over
//! in-process connections; a fairness case pins that a slow-reading
//! connection cannot stall others on the same loop, and a smoke test
//! exercises the actual TCP path (skipping cleanly where sockets are
//! unavailable).

use govhost::obs::TimeMode;
use govhost::prelude::*;
use govhost::serve::{
    ConnPolicy, EventLoop, FakeClock, FakeReadiness, Limits, MemConn, Pool, ServeState, Server,
    ServerConfig,
};
use std::io::{Read as _, Write as _};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Every route the server exposes, in a fixed request order, as
/// `(label, raw request bytes)`. A conditional `/hhi` revalidation
/// pins the 304 bytes, an unknown path pins the 404 bytes, and
/// `/metrics` goes last so its body reflects the whole (deterministic)
/// sequence.
fn request_sequence(dataset: &GovDataset, state: &ServeState) -> Vec<(String, Vec<u8>)> {
    let country = dataset.countries()[0];
    let mut wires: Vec<(String, Vec<u8>)> = [
        "/healthz".to_string(),
        "/countries".to_string(),
        format!("/country/{country}"),
        "/flows".to_string(),
        "/providers".to_string(),
        "/hhi".to_string(),
        "/nope".to_string(),
    ]
    .into_iter()
    .map(|route| {
        let raw = format!("GET {route} HTTP/1.1\r\nConnection: close\r\n\r\n");
        (route, raw.into_bytes())
    })
    .collect();
    let etag = state.index().hhi_slab().etag().to_string();
    wires.push((
        "/hhi revalidation".to_string(),
        format!("GET /hhi HTTP/1.1\r\nIf-None-Match: {etag}\r\nConnection: close\r\n\r\n")
            .into_bytes(),
    ));
    // HEAD, parameterized queries (a miss, then its hit — duplicates
    // are safe here because the sequence is served serially), and a
    // typed query 400.
    wires.push((
        "HEAD /hhi".to_string(),
        b"HEAD /hhi HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
    ));
    for label in ["/flows?limit=5", "/flows?limit=5", "/flows?bogus=1"] {
        wires.push((
            label.to_string(),
            format!("GET {label} HTTP/1.1\r\nConnection: close\r\n\r\n").into_bytes(),
        ));
    }
    wires.push((
        "/metrics".to_string(),
        b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
    ));
    wires
}

/// Build at `threads`, serve through a `threads`-worker pool, and
/// collect the full response bytes of the fixed request sequence,
/// issued by a single sequential client.
fn responses_at(world: &World, threads: usize) -> Vec<Vec<u8>> {
    let dataset = GovDataset::build(world, &BuildOptions { threads, ..Default::default() });
    let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
    let wires = request_sequence(&dataset, &state);
    let pool = Pool::start(state, threads, Limits::default());
    let mut responses = Vec::new();
    for (_, raw) in &wires {
        let (conn, rx) = MemConn::scripted(raw.clone());
        assert!(pool.submit(Box::new(conn)), "pool accepts while running");
        responses.push(rx.recv().expect("connection was served"));
    }
    pool.shutdown();
    responses
}

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    let world = World::generate(&GenParams::tiny());
    let labels: Vec<String> = {
        let ds = GovDataset::build(&world, &BuildOptions::default());
        let state = ServeState::with_mode(&ds, TimeMode::Deterministic);
        request_sequence(&ds, &state).into_iter().map(|(label, _)| label).collect()
    };
    let baseline = responses_at(&world, 1);
    for threads in [2, 4] {
        let got = responses_at(&world, threads);
        assert_eq!(baseline.len(), got.len());
        for ((label, base), other) in labels.iter().zip(&baseline).zip(&got) {
            assert_eq!(
                base, other,
                "{label} response differs between workers=1 and workers={threads}"
            );
        }
    }
    // Sanity: the pinned bytes are real answers, not empty shells.
    for (label, response) in labels.iter().zip(&baseline) {
        let text = String::from_utf8_lossy(response);
        let expected = match label.as_str() {
            "/nope" => "HTTP/1.1 404",
            "/hhi revalidation" => "HTTP/1.1 304",
            "/flows?bogus=1" => "HTTP/1.1 400",
            _ => "HTTP/1.1 200",
        };
        assert!(text.starts_with(expected), "{label}: {text}");
        if !matches!(label.as_str(), "/nope" | "/metrics" | "/flows?bogus=1") {
            assert!(text.contains("\r\nETag: \""), "{label} carries an ETag: {text}");
        }
        if label == "HEAD /hhi" {
            let (_, body) = text.split_once("\r\n\r\n").expect("head/body split");
            assert!(body.is_empty(), "HEAD puts zero body bytes on the wire: {text}");
        }
    }
    // The 304 revalidation answered with the same ETag and no body.
    let full = String::from_utf8_lossy(&baseline[5]);
    let revalidated = String::from_utf8_lossy(&baseline[7]);
    let etag_of = |text: &str| {
        text.lines().find_map(|l| l.strip_prefix("ETag: ").map(str::to_string)).unwrap()
    };
    assert_eq!(etag_of(&full), etag_of(&revalidated));
    assert!(
        !revalidated.contains("Content-Length:"),
        "a 304 omits Content-Length: {revalidated}"
    );
    let metrics = String::from_utf8_lossy(baseline.last().expect("metrics response"));
    assert!(metrics.contains("http_requests{route=\"/hhi\"} 3"), "{metrics}");
    assert!(metrics.contains("http_requests{route=\"/flows\"} 4"), "{metrics}");
    assert!(metrics.contains("http_requests{route=\"other\"} 1"), "{metrics}");
    assert!(metrics.contains("http_responses{class=\"3xx\",route=\"/hhi\"} 1"), "{metrics}");
    assert!(metrics.contains("http_responses{class=\"4xx\",route=\"/flows\"} 1"), "{metrics}");
    assert!(metrics.contains("http_query_cache{outcome=\"miss\"} 1"), "{metrics}");
    assert!(metrics.contains("http_query_cache{outcome=\"hit\"} 1"), "{metrics}");
    assert!(metrics.contains("http_query_cache{outcome=\"eviction\"} 0"), "{metrics}");
    assert!(metrics.contains("http_shed 0"), "{metrics}");
    assert!(metrics.contains("# TYPE http_latency_ns histogram"), "{metrics}");
}

#[test]
fn repeated_runs_produce_the_same_bytes() {
    let world = World::generate(&GenParams::tiny());
    assert_eq!(responses_at(&world, 2), responses_at(&world, 2));
}

/// A connection whose peer never drains its responses (every write
/// would block) while pipelining requests forever — the classic
/// head-of-line hazard for a shared event loop.
struct SlowReader;

impl std::io::Read for SlowReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let wire = b"GET /countries HTTP/1.1\r\n\r\n";
        let n = wire.len().min(buf.len());
        buf[..n].copy_from_slice(&wire[..n]);
        Ok(n)
    }
}

impl std::io::Write for SlowReader {
    fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
        Err(std::io::ErrorKind::WouldBlock.into())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A well-behaved connection sharing the loop with the slow reader.
struct Normal {
    sent: bool,
    out: Arc<Mutex<Vec<u8>>>,
}

impl std::io::Read for Normal {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.sent {
            return Ok(0);
        }
        self.sent = true;
        let wire = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        buf[..wire.len()].copy_from_slice(wire);
        Ok(wire.len())
    }
}

impl std::io::Write for Normal {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.out.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Fairness: a connection whose peer reads nothing (and keeps
/// pipelining) cannot stall another connection on the same event loop.
/// Backpressure parks the slow connection once its output queue passes
/// the bound; the well-behaved one is served to completion.
#[test]
fn a_slow_reader_cannot_stall_other_connections() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
    let policy = ConnPolicy { max_pending_out: 4096, ..ConnPolicy::default() };
    let mut el = EventLoop::new(
        Arc::clone(&state),
        Box::new(FakeReadiness::always()),
        Arc::new(FakeClock::new()),
        policy,
        Arc::new(AtomicBool::new(false)),
    );
    el.register(Box::new(SlowReader), None);
    let out = Arc::new(Mutex::new(Vec::new()));
    el.register(Box::new(Normal { sent: false, out: Arc::clone(&out) }), None);
    let mut turns = 0;
    while el.len() > 1 {
        el.turn(Some(Duration::from_millis(1))).unwrap();
        turns += 1;
        assert!(turns < 1000, "the well-behaved connection never completed");
    }
    assert_eq!(el.len(), 1, "the slow reader is parked, not evicted");
    let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.contains("Connection: close\r\n"), "{text}");
    assert!(text.ends_with('}'), "full body delivered: {text}");
}

/// Drive the server over a real loopback socket: bind an ephemeral
/// port, send a pipelined pair of requests, read both answers back.
/// Environments without socket support skip cleanly instead of failing.
#[test]
fn loopback_smoke_answers_real_sockets() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
    let config = ServerConfig { threads: 2, ..ServerConfig::default() };
    let server = match Server::bind(state, "127.0.0.1:0", config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("skipping loopback smoke test: cannot bind a loopback socket ({e})");
            return;
        }
    };
    let mut stream = match std::net::TcpStream::connect(server.local_addr()) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("skipping loopback smoke test: cannot connect over loopback ({e})");
            server.shutdown();
            return;
        }
    };
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\n\r\n\
              GET /countries HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .expect("write requests");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read responses");
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    assert!(text.contains("Connection: keep-alive"), "{text}");
    assert!(text.ends_with('}') || text.ends_with(']'), "JSON body last: {text}");
    server.shutdown();
}

/// Overload shedding on the real TCP path: with `max_conns: 1` and the
/// single slot held by an idle connection, the next connect must read a
/// complete `503 Retry-After` — the acceptor writes it before the
/// socket is switched non-blocking, so a full buffer cannot silently
/// truncate it. Skips cleanly where sockets are unavailable.
#[test]
fn loopback_shed_delivers_a_complete_503() {
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
    let config = ServerConfig { threads: 1, max_conns: 1, ..ServerConfig::default() };
    let server = match Server::bind(state, "127.0.0.1:0", config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("skipping loopback shed test: cannot bind a loopback socket ({e})");
            return;
        }
    };
    let holder = match std::net::TcpStream::connect(server.local_addr()) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("skipping loopback shed test: cannot connect over loopback ({e})");
            server.shutdown();
            return;
        }
    };
    // Give the acceptor a beat to claim the only slot for `holder`.
    std::thread::sleep(Duration::from_millis(100));
    let mut shed = std::net::TcpStream::connect(server.local_addr()).expect("second connect");
    let mut raw = Vec::new();
    shed.read_to_end(&mut raw).expect("read the shed response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 503 Service Unavailable"), "{text}");
    assert!(text.contains("Retry-After: 1\r\n"), "{text}");
    assert!(text.contains("Connection: close\r\n"), "{text}");
    assert!(text.ends_with('}'), "complete JSON body delivered: {text}");
    drop(holder);
    server.shutdown();
}

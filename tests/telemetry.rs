//! The observability determinism contract, pinned at integration level:
//! the telemetry files the pipeline exports — `trace.json` (span tree,
//! deterministic mode) and `metrics.json` (the registry) — must be
//! **byte-identical** for every `GOVHOST_THREADS` value. Timings vary
//! with scheduling; everything else in the capture is a pure function of
//! the world, and the deterministic export mode zeroes the nanoseconds,
//! so the bytes cannot be allowed to move.

use govhost::obs::export::{metrics_json, metrics_text, trace_json, TimeMode};
use govhost::prelude::*;

/// Build at `scale` with `threads` workers and export all three
/// telemetry documents — `trace.json`, `metrics.json`, and the
/// `/metrics` text exposition — in deterministic mode.
fn exports(world: &World, threads: usize) -> (String, String, String) {
    let ds = GovDataset::build(world, &BuildOptions { threads, ..Default::default() });
    (
        trace_json(&ds.telemetry, TimeMode::Deterministic),
        metrics_json(&ds.telemetry),
        metrics_text(&ds.telemetry, TimeMode::Deterministic),
    )
}

/// The acceptance invariant of the observability layer: at a realistic
/// scale, `trace.json`, `metrics.json`, and the text exposition are
/// byte-identical for 1, 2, and 4 build threads.
#[test]
fn telemetry_exports_are_byte_identical_across_thread_counts() {
    let world = World::generate(&GenParams { scale: 0.3, ..GenParams::default() });
    let (base_trace, base_metrics, base_text) = exports(&world, 1);
    for threads in [2, 4] {
        let (trace, metrics, text) = exports(&world, threads);
        assert_eq!(base_trace, trace, "trace.json differs at threads={threads}");
        assert_eq!(base_metrics, metrics, "metrics.json differs at threads={threads}");
        assert_eq!(base_text, text, "text exposition differs at threads={threads}");
    }
    assert!(base_text.contains("# TYPE"), "the exposition carries type metadata");
}

/// The deterministic exports are also stable across *runs* — two builds
/// of the same world produce the same bytes, so diffing telemetry files
/// between CI runs is meaningful.
#[test]
fn telemetry_exports_are_stable_across_runs() {
    let world = World::generate(&GenParams::tiny());
    let (t1, m1, x1) = exports(&world, 4);
    let (t2, m2, x2) = exports(&world, 4);
    assert_eq!(t1, t2);
    assert_eq!(m1, m2);
    assert_eq!(x1, x2);
}

/// The serving tier's own telemetry obeys the same contract: a fixed
/// request sequence answered through 1, 2, and 4 event-loop workers
/// yields a byte-identical deterministic `/metrics` exposition (the
/// `_ns` series are zeroed; counters and byte histograms are pure
/// functions of the sequence).
#[test]
fn serve_telemetry_is_byte_identical_across_worker_counts() {
    use govhost::serve::{Limits, MemConn, Pool, ServeState};
    use std::sync::Arc;
    let world = World::generate(&GenParams::tiny());
    let dataset = GovDataset::build(&world, &BuildOptions::default());
    let snapshot_at = |workers: usize| -> String {
        let state = Arc::new(ServeState::with_mode(&dataset, TimeMode::Deterministic));
        let pool = Pool::start(Arc::clone(&state), workers, Limits::default());
        for route in ["/healthz", "/countries", "/hhi", "/nope"] {
            let raw = format!("GET {route} HTTP/1.1\r\nConnection: close\r\n\r\n");
            let (conn, rx) = MemConn::scripted(raw.into_bytes());
            assert!(pool.submit(Box::new(conn)), "pool accepts while running");
            rx.recv().expect("connection was served");
        }
        pool.shutdown();
        metrics_text(&state.telemetry_snapshot(), TimeMode::Deterministic)
    };
    let base = snapshot_at(1);
    for workers in [2, 4] {
        let got = snapshot_at(workers);
        assert_eq!(base, got, "serve telemetry differs at workers={workers}");
    }
    assert!(base.contains("http_requests{route=\"/hhi\"} 1"), "{base}");
    assert!(base.contains("http_shed 0"), "{base}");
}

/// The capture actually contains the pipeline: the documented span names
/// and counter series all appear, with counts consistent with the
/// dataset they describe.
#[test]
fn capture_covers_every_pipeline_stage() {
    let world = World::generate(&GenParams::tiny());
    let ds = GovDataset::build(&world, &BuildOptions::default());
    let t = &ds.telemetry;
    for span in ["build", "country", "crawl", "classify", "identify", "geolocate", "locate"] {
        assert!(t.span_count(span) > 0, "span {span:?} missing from the capture");
    }
    for counter in [
        "crawl.pages",
        "classify.urls_examined",
        "identify.hosts",
        "dns.queries",
        "geoloc.tasks",
        "analyze.hosts",
    ] {
        assert!(
            t.registry.counter_total(counter) > 0,
            "counter {counter:?} missing from the capture"
        );
    }
    assert_eq!(t.registry.counter_total("analyze.hosts"), ds.hosts.len() as u64);
    assert_eq!(t.span_count("locate"), t.registry.counter_total("geoloc.tasks"));
    let trace = trace_json(t, TimeMode::Deterministic);
    assert!(trace.contains("\"busy_ns\": 0"), "deterministic mode zeroes time");
    assert!(!metrics_json(t).contains("busy_ns"), "metrics carry no span timings");
}

/// Verbose mode is the profiling escape hatch: it keeps the real
/// nanoseconds, so its bytes are *not* expected to be stable — but the
/// structure must match the deterministic export exactly.
#[test]
fn verbose_export_differs_only_in_nanoseconds() {
    let world = World::generate(&GenParams::tiny());
    let ds = GovDataset::build(&world, &BuildOptions::default());
    let det = trace_json(&ds.telemetry, TimeMode::Deterministic);
    let verbose = trace_json(&ds.telemetry, TimeMode::Verbose);
    assert!(verbose.contains("\"mode\": \"verbose\""));
    let strip = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.contains("\"busy_ns\"") && !l.contains("\"self_ns\"") && !l.contains("\"mode\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&det), strip(&verbose), "structure must not depend on the mode");
}
